// Process-wide metrics registry: counters, gauges, histograms.
//
// The observability substrate for everything from EpochSimulator windows
// to dispatcher wire RPCs.  Design constraints, in order:
//
//   1. Disabled must be (almost) free.  Every instrumentation site guards
//      on `telemetry::enabled()`, a relaxed load of one process-wide
//      atomic — when telemetry is off the instrumentation compiles down
//      to that branch, no clock reads, no allocation, so sweep results
//      stay byte-identical and tier-1 timing is unaffected.
//   2. Enabled must be lock-cheap on hot paths.  Counters are sharded
//      across cache-line-padded atomics indexed by thread, so concurrent
//      increments from the task pool do not bounce a single line.
//   3. Metric objects never move.  `Registry::global().counter(name)`
//      returns a reference that stays valid for the process lifetime, so
//      call sites cache it in a function-local static.
//
// This library sits below common/ (it depends only on the standard
// library) so every layer — thermal, runtime, core, engine — can
// instrument itself without dependency cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hayat::telemetry {

namespace detail {
extern std::atomic<bool> gEnabled;
}  // namespace detail

/// True when telemetry collection is on (configure() or setEnabled()).
/// The one branch every instrumentation site pays when disabled.
inline bool enabled() {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off without touching the export configuration.
void setEnabled(bool on);

/// Monotonic counter.  add() hits one of kShards cache-line-padded
/// atomics chosen by the calling thread; value() sums the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  static constexpr unsigned kShards = 16;
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative buckets).  The
/// bucket layout is frozen at construction; observe() is two relaxed
/// atomic adds plus a linear scan over a handful of bounds.
class Histogram {
 public:
  /// `upperBounds` must be strictly increasing; an implicit +inf bucket
  /// is appended.
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double value);
  std::uint64_t count() const;
  double sum() const;
  const std::vector<double>& upperBounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts; size upperBounds().size() + 1,
  /// last entry is the overflow bucket.
  std::vector<std::uint64_t> bucketCounts() const;

  /// Bucket-interpolated quantile, q in [0, 1]: finds the bucket holding
  /// the q-th observation and interpolates linearly inside it (the first
  /// bucket interpolates from 0, the overflow bucket reports its lower
  /// bound).  Returns 0 with no observations.
  double percentile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds + overflow
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram, for exporters.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upperBounds;
  std::vector<std::uint64_t> counts;  ///< per bucket, non-cumulative
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of the whole registry, name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Named metric registry.  Lookup takes a mutex (call sites cache the
/// returned reference); the metric objects themselves are allocated once
/// and never move or die.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Returns the histogram registered under `name`, creating it with
  /// `upperBounds` on first use (later calls ignore the bounds).
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upperBounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (objects and references stay valid).  Tests
  /// only; production code never resets.
  void resetAllForTest();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Encodes the counters that advanced since `lastSent` as "c,<name>,<d>"
/// lines and updates `lastSent` to the current values — the payload
/// workers piggyback on wire Result frames so the coordinator can merge
/// a fleet's metrics without any shared filesystem.
std::string encodeCounterDeltas(std::map<std::string, std::uint64_t>& lastSent);

/// Parses encodeCounterDeltas output; returns false on malformed input.
bool decodeCounterDeltas(
    const std::string& text,
    std::vector<std::pair<std::string, std::uint64_t>>& out);

/// Encodes the histograms that advanced since `lastSent` as
///
///   h,<name>,<countDelta>,<sumDelta>,<le>:<d>,...,+Inf:<d>
///
/// lines (one per histogram, every bucket listed so the coordinator can
/// reconstruct the layout) and updates `lastSent`.  Workers append this
/// to the counter deltas on Result frames — wire v3's histogram
/// shipping.
std::string encodeHistogramDeltas(
    std::map<std::string, HistogramSnapshot>& lastSent);

/// Counter and histogram deltas decoded from one wire metrics section.
/// Histogram counts/sums are deltas since the worker's previous send,
/// not totals.
struct MetricDeltas {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }
  void clear() {
    counters.clear();
    histograms.clear();
  }
};

/// Parses a metrics section of "c,..." and "h,..." lines; returns false
/// on any malformed line.
bool decodeMetricDeltas(const std::string& text, MetricDeltas& out);

}  // namespace hayat::telemetry
