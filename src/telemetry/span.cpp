#include "telemetry/span.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

namespace hayat::telemetry {

std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(const SpanEvent& event) {
  const std::scoped_lock lock(mutex_);
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

std::vector<SpanEvent> FlightRecorder::events() const {
  const std::scoped_lock lock(mutex_);
  std::vector<SpanEvent> out;
  const std::size_t retained =
      recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                               : ring_.size();
  out.reserve(retained);
  // Oldest retained event sits at next_ once the ring has wrapped.
  const std::size_t first =
      recorded_ < ring_.size() ? 0 : next_ % ring_.size();
  for (std::size_t i = 0; i < retained; ++i)
    out.push_back(ring_[(first + i) % ring_.size()]);
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::scoped_lock lock(mutex_);
  return recorded_;
}

namespace {

struct RecorderDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<FlightRecorder>> recorders;
};

RecorderDirectory& directory() {
  static RecorderDirectory* dir = new RecorderDirectory();  // never dies
  return *dir;
}

struct ThreadState {
  std::shared_ptr<FlightRecorder> recorder;
  std::uint32_t id = 0;
  std::uint16_t depth = 0;
};

ThreadState& threadState() {
  thread_local ThreadState state = [] {
    ThreadState s;
    s.recorder = std::make_shared<FlightRecorder>();
    RecorderDirectory& dir = directory();
    const std::scoped_lock lock(dir.mutex);
    s.id = static_cast<std::uint32_t>(dir.recorders.size());
    dir.recorders.push_back(s.recorder);
    return s;
  }();
  return state;
}

}  // namespace

FlightRecorder& threadRecorder() { return *threadState().recorder; }

std::vector<SpanEvent> collectAllSpans() {
  std::vector<std::shared_ptr<FlightRecorder>> recorders;
  {
    RecorderDirectory& dir = directory();
    const std::scoped_lock lock(dir.mutex);
    recorders = dir.recorders;
  }
  std::vector<SpanEvent> all;
  for (const auto& r : recorders) {
    const std::vector<SpanEvent> events = r->events();
    all.insert(all.end(), events.begin(), events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.startNs < b.startNs;
                   });
  return all;
}

namespace {
std::atomic<std::uint32_t> g_spanSampleEvery{1};
}  // namespace

void setSpanSampling(std::uint32_t everyN) {
  g_spanSampleEvery.store(everyN == 0 ? 1 : everyN,
                          std::memory_order_relaxed);
}

std::uint32_t spanSampleEvery() {
  return g_spanSampleEvery.load(std::memory_order_relaxed);
}

bool sampleSpanSite(std::atomic<std::uint64_t>& siteCounter) {
  const std::uint32_t every = spanSampleEvery();
  if (every <= 1) return true;
  return siteCounter.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

Span::Span(const char* name) : Span(name, true) {}

Span::Span(const char* name, bool record) {
  if (!record || !enabled()) return;
  name_ = name;
  startNs_ = nowNanos();
  ThreadState& state = threadState();
  if (state.depth < UINT16_MAX) ++state.depth;
}

Span::~Span() {
  if (name_ == nullptr) return;
  ThreadState& state = threadState();
  if (state.depth > 0) --state.depth;
  SpanEvent event;
  event.name = name_;
  event.startNs = startNs_;
  event.durationNs = nowNanos() - startNs_;
  event.threadId = state.id;
  event.depth = state.depth;
  state.recorder->record(event);
}

}  // namespace hayat::telemetry
