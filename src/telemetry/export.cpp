#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace hayat::telemetry {

namespace {

std::string fmt(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string fmtU64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

namespace {

/// One histogram's {source="worker"} sample lines (cumulative buckets,
/// sum, count), appended inside or after the owner's # TYPE block.
void writeWorkerHistogramLines(std::ostream& out,
                               const HistogramSnapshot& h) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    const std::string le =
        i < h.upperBounds.size() ? fmt(h.upperBounds[i]) : "+Inf";
    out << h.name << "_bucket{source=\"worker\",le=\"" << le << "\"} "
        << fmtU64(cumulative) << '\n';
  }
  out << h.name << "_sum{source=\"worker\"} " << fmt(h.sum) << '\n';
  out << h.name << "_count{source=\"worker\"} " << fmtU64(h.count) << '\n';
}

}  // namespace

void writePrometheus(
    std::ostream& out, const MetricsSnapshot& snapshot,
    const std::map<std::string, std::uint64_t>& workerCounters,
    const std::vector<HistogramSnapshot>& workerHistograms) {
  std::map<std::string, std::uint64_t> workerOnly = workerCounters;
  std::map<std::string, const HistogramSnapshot*> workerHistOnly;
  for (const HistogramSnapshot& h : workerHistograms)
    workerHistOnly[h.name] = &h;

  for (const auto& [name, value] : snapshot.counters) {
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << fmtU64(value) << '\n';
    const auto worker = workerOnly.find(name);
    if (worker != workerOnly.end()) {
      out << name << "{source=\"worker\"} " << fmtU64(worker->second)
          << '\n';
      workerOnly.erase(worker);
    }
  }
  // Counters only workers reported (e.g. a metric the coordinator's code
  // path never touched).
  for (const auto& [name, value] : workerOnly) {
    out << "# TYPE " << name << " counter\n";
    out << name << "{source=\"worker\"} " << fmtU64(value) << '\n';
  }

  for (const auto& [name, value] : snapshot.gauges) {
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << fmt(value) << '\n';
  }

  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.upperBounds.size() ? fmt(h.upperBounds[i]) : "+Inf";
      out << h.name << "_bucket{le=\"" << le << "\"} " << fmtU64(cumulative)
          << '\n';
    }
    out << h.name << "_sum " << fmt(h.sum) << '\n';
    out << h.name << "_count " << fmtU64(h.count) << '\n';
    const auto worker = workerHistOnly.find(h.name);
    if (worker != workerHistOnly.end()) {
      writeWorkerHistogramLines(out, *worker->second);
      workerHistOnly.erase(worker);
    }
  }
  // Histograms only workers reported.
  for (const auto& [name, h] : workerHistOnly) {
    out << "# TYPE " << name << " histogram\n";
    writeWorkerHistogramLines(out, *h);
  }
}

void writeChromeTrace(std::ostream& out, const std::vector<SpanEvent>& events,
                      int pid) {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out << ',';
    first = false;
    char ts[64], dur[64];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(e.startNs) / 1e3);
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(e.durationNs) / 1e3);
    out << "\n{\"name\": \"" << jsonEscape(e.name)
        << "\", \"cat\": \"hayat\", \"ph\": \"X\", \"ts\": " << ts
        << ", \"dur\": " << dur << ", \"pid\": " << pid
        << ", \"tid\": " << e.threadId << ", \"args\": {\"depth\": "
        << e.depth << "}}";
  }
  out << "\n]}\n";
}

namespace {

/// Minimal strict JSON syntax checker (recursive descent).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool check() {
    skipSpace();
    if (!value()) return false;
    skipSpace();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (depth_ > 256 || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skipSpace();
      if (!string()) return false;
      skipSpace();
      if (peek() != ':') return false;
      ++pos_;
      skipSpace();
      if (!value()) return false;
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skipSpace();
      if (!value()) return false;
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) ==
                   std::string::npos) {
          return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

std::string readFile(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

std::string trimmed(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

}  // namespace

bool validateJson(const std::string& text) {
  return JsonChecker(text).check();
}

bool mergeChromeTraceFiles(const std::vector<std::string>& paths,
                           std::ostream& out) {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const std::string& path : paths) {
    bool ok = false;
    const std::string text = readFile(path, ok);
    if (!ok || !validateJson(text)) return false;
    const std::size_t open = text.find('[');
    const std::size_t close = text.rfind(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open)
      return false;
    const std::string events =
        trimmed(text.substr(open + 1, close - open - 1));
    if (events.empty()) continue;
    if (!first) out << ',';
    first = false;
    out << '\n' << events;
  }
  out << "\n]}\n";
  return true;
}

bool mergePrometheusFiles(const std::vector<std::string>& paths,
                          std::ostream& out) {
  std::vector<std::string> nameOrder;                 // declaration order
  std::map<std::string, std::string> typeOf;          // metric -> type
  std::map<std::string, std::vector<std::string>> keysOf;  // sample order
  std::map<std::string, double> merged;               // sample -> value

  // The owning metric of a sample key: the longest declared name the key
  // extends with nothing, a label set, or a histogram-series suffix.
  const auto ownerOf = [&](const std::string& key) -> const std::string* {
    const std::string* best = nullptr;
    for (const std::string& name : nameOrder) {
      if (key.compare(0, name.size(), name) != 0) continue;
      const std::string rest = key.substr(name.size());
      const bool matches = rest.empty() || rest[0] == '{' ||
                           rest.rfind("_bucket", 0) == 0 ||
                           rest.rfind("_sum", 0) == 0 ||
                           rest.rfind("_count", 0) == 0;
      if (matches && (best == nullptr || name.size() > best->size()))
        best = &name;
    }
    return best;
  };

  for (const std::string& path : paths) {
    bool ok = false;
    const std::string text = readFile(path, ok);
    if (!ok) return false;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream fields(line.substr(7));
        std::string name, type;
        if (!(fields >> name >> type)) return false;
        if (typeOf.find(name) == typeOf.end()) {
          typeOf[name] = type;
          nameOrder.push_back(name);
        }
        continue;
      }
      if (line[0] == '#') continue;

      const std::size_t space = line.rfind(' ');
      if (space == std::string::npos || space == 0) return false;
      const std::string key = line.substr(0, space);
      char* end = nullptr;
      const double value = std::strtod(line.c_str() + space + 1, &end);
      if (end == nullptr || *end != '\0') return false;

      const std::string* owner = ownerOf(key);
      if (owner == nullptr) return false;  // sample before its # TYPE
      const bool isGauge = typeOf[*owner] == "gauge";
      const auto it = merged.find(key);
      if (it == merged.end()) {
        merged[key] = value;
        keysOf[*owner].push_back(key);
      } else {
        it->second = isGauge ? std::max(it->second, value)
                             : it->second + value;
      }
    }
  }

  for (const std::string& name : nameOrder) {
    out << "# TYPE " << name << ' ' << typeOf[name] << '\n';
    for (const std::string& key : keysOf[name])
      out << key << ' ' << fmt(merged[key]) << '\n';
  }
  return true;
}

}  // namespace hayat::telemetry
