// Per-epoch time-series recorder with a compact binary format.
//
// Every aging epoch of every lifetime run yields one EpochRow: the
// temperature peaks, DTM throttle activity, throttled-step duty, and
// health state the paper's policy acts on — exactly the workload/aging
// time series that learned aging predictors train on (Genssler et al.,
// PAPERS.md).  Rows accumulate in a process-wide recorder and are dumped
// as `.epochs.bin`:
//
//   "HYEP" <version:u32 LE> <rowCount:u64 LE> <row>*
//   row := <policyLen:u32 LE> <policy bytes>
//          <chip:i32> <repetition:i32> <darkFraction:f64> <epochIndex:i32>
//          <startYear:f64> <chipPeakK:f64> <chipTimeAverageK:f64>
//          <minHealth:f64> <averageHealth:f64> <chipFmaxHz:f64>
//          <averageFmaxHz:f64> <dtmEvents:i64> <migrations:i64>
//          <throttles:i64> <throttledSteps:i32> <totalSteps:i32>
//          <throughputRatio:f64>
//
// All integers and IEEE-754 doubles are little-endian.  The format is a
// telemetry artifact, not a result contract: results stay in the cache /
// reporter formats, and the binary here exists so multi-million-epoch
// sweeps can record without the CSV size or parse cost (a CSV exporter
// converts on demand, see export.hpp and `hayat trace export`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace hayat::telemetry {

inline constexpr std::uint32_t kEpochSeriesVersion = 1;

/// One epoch of one lifetime run.
struct EpochRow {
  int chip = 0;
  int repetition = 0;
  double darkFraction = 0.0;
  std::string policy;
  int epochIndex = 0;
  double startYear = 0.0;
  double chipPeakK = 0.0;
  double chipTimeAverageK = 0.0;
  double minHealth = 1.0;
  double averageHealth = 1.0;
  double chipFmaxHz = 0.0;
  double averageFmaxHz = 0.0;
  long dtmEvents = 0;
  long migrations = 0;
  long throttles = 0;
  int throttledSteps = 0;
  int totalSteps = 0;
  double throughputRatio = 1.0;
};

/// Process-wide epoch-series accumulator (mutex-guarded; appends happen
/// at epoch granularity, far off any hot path).
class EpochSeries {
 public:
  static EpochSeries& global();

  void append(EpochRow row);
  std::vector<EpochRow> rows() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<EpochRow> rows_;
};

/// Writes the binary format above.
void writeEpochSeriesBinary(std::ostream& out,
                            const std::vector<EpochRow>& rows);

/// Reads the binary format; returns false on bad magic, version, or
/// truncation (rows read so far are discarded).
bool readEpochSeriesBinary(std::istream& in, std::vector<EpochRow>& rows);

/// CSV view of the rows (%.17g doubles, one row per epoch).
void writeEpochSeriesCsv(std::ostream& out, const std::vector<EpochRow>& rows);

}  // namespace hayat::telemetry
