#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace hayat::telemetry {

namespace detail {
std::atomic<bool> gEnabled{false};
}  // namespace detail

void setEnabled(bool on) {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

namespace {

/// Stable per-thread shard index: threads are striped across shards in
/// registration order, which spreads a worker pool evenly.
unsigned threadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard = next.fetch_add(1);
  return shard;
}

}  // namespace

void Counter::add(std::uint64_t n) {
  shards_[threadShard() % kShards].value.fetch_add(n,
                                                   std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_)
    total += s.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      // Misdeclared bounds would silently misbucket forever; fail loudly
      // (telemetry must never throw into instrumented code, so abort).
      std::fprintf(stderr,
                   "telemetry: histogram bounds must be strictly "
                   "increasing\n");
      std::abort();
    }
  }
}

void Histogram::observe(double value) {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return total_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_)
    out.push_back(c.load(std::memory_order_relaxed));
  return out;
}

double Histogram::percentile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<std::uint64_t> counts = bucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (rank - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upperBounds) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(upperBounds);
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_)
    snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_)
    snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.upperBounds = h->upperBounds();
    hs.counts = h->bucketCounts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::resetAllForTest() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string encodeCounterDeltas(
    std::map<std::string, std::uint64_t>& lastSent) {
  const MetricsSnapshot snap = Registry::global().snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::uint64_t previous = lastSent[name];
    if (value <= previous) continue;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value - previous);
    out += "c," + name + ',' + buf + '\n';
    lastSent[name] = value;
  }
  return out;
}

bool decodeCounterDeltas(
    const std::string& text,
    std::vector<std::pair<std::string, std::uint64_t>>& out) {
  out.clear();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.compare(0, 2, "c,") != 0) return false;
    const std::size_t comma = line.rfind(',');
    if (comma <= 2 || comma == std::string::npos) return false;
    const std::string name = line.substr(2, comma - 2);
    char* parseEnd = nullptr;
    const std::uint64_t delta =
        std::strtoull(line.c_str() + comma + 1, &parseEnd, 10);
    if (parseEnd == nullptr || *parseEnd != '\0' || name.empty())
      return false;
    out.emplace_back(name, delta);
  }
  return true;
}

}  // namespace hayat::telemetry
