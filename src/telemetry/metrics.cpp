#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace hayat::telemetry {

namespace detail {
std::atomic<bool> gEnabled{false};
}  // namespace detail

void setEnabled(bool on) {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

namespace {

/// Stable per-thread shard index: threads are striped across shards in
/// registration order, which spreads a worker pool evenly.
unsigned threadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard = next.fetch_add(1);
  return shard;
}

}  // namespace

void Counter::add(std::uint64_t n) {
  shards_[threadShard() % kShards].value.fetch_add(n,
                                                   std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_)
    total += s.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      // Misdeclared bounds would silently misbucket forever; fail loudly
      // (telemetry must never throw into instrumented code, so abort).
      std::fprintf(stderr,
                   "telemetry: histogram bounds must be strictly "
                   "increasing\n");
      std::abort();
    }
  }
}

void Histogram::observe(double value) {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return total_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_)
    out.push_back(c.load(std::memory_order_relaxed));
  return out;
}

double Histogram::percentile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<std::uint64_t> counts = bucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (rank - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upperBounds) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(upperBounds);
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_)
    snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_)
    snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.upperBounds = h->upperBounds();
    hs.counts = h->bucketCounts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::resetAllForTest() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string encodeCounterDeltas(
    std::map<std::string, std::uint64_t>& lastSent) {
  const MetricsSnapshot snap = Registry::global().snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::uint64_t previous = lastSent[name];
    if (value <= previous) continue;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value - previous);
    out += "c," + name + ',' + buf + '\n';
    lastSent[name] = value;
  }
  return out;
}

namespace {

bool parseCounterLine(
    const std::string& line,
    std::vector<std::pair<std::string, std::uint64_t>>& out) {
  const std::size_t comma = line.rfind(',');
  if (comma <= 2 || comma == std::string::npos) return false;
  const std::string name = line.substr(2, comma - 2);
  char* parseEnd = nullptr;
  const std::uint64_t delta =
      std::strtoull(line.c_str() + comma + 1, &parseEnd, 10);
  if (parseEnd == nullptr || *parseEnd != '\0' || name.empty())
    return false;
  out.emplace_back(name, delta);
  return true;
}

std::vector<std::string> splitOn(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parseU64(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size() && !text.empty();
}

bool parseDouble(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty();
}

/// "h,<name>,<countDelta>,<sumDelta>,<le>:<d>,...,+Inf:<d>"
bool parseHistogramLine(const std::string& line,
                        std::vector<HistogramSnapshot>& out) {
  const std::vector<std::string> parts = splitOn(line.substr(2), ',');
  if (parts.size() < 4) return false;
  HistogramSnapshot h;
  h.name = parts[0];
  if (h.name.empty()) return false;
  if (!parseU64(parts[1], h.count)) return false;
  if (!parseDouble(parts[2], h.sum)) return false;
  for (std::size_t i = 3; i < parts.size(); ++i) {
    const std::size_t colon = parts[i].rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    const std::string le = parts[i].substr(0, colon);
    std::uint64_t bucketDelta = 0;
    if (!parseU64(parts[i].substr(colon + 1), bucketDelta)) return false;
    const bool isLast = i + 1 == parts.size();
    if (isLast) {
      if (le != "+Inf") return false;
    } else {
      double bound = 0.0;
      if (!parseDouble(le, bound)) return false;
      if (!h.upperBounds.empty() && bound <= h.upperBounds.back())
        return false;
      h.upperBounds.push_back(bound);
    }
    h.counts.push_back(bucketDelta);
  }
  out.push_back(std::move(h));
  return true;
}

}  // namespace

bool decodeCounterDeltas(
    const std::string& text,
    std::vector<std::pair<std::string, std::uint64_t>>& out) {
  out.clear();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.compare(0, 2, "c,") != 0) return false;
    if (!parseCounterLine(line, out)) return false;
  }
  return true;
}

std::string encodeHistogramDeltas(
    std::map<std::string, HistogramSnapshot>& lastSent) {
  const MetricsSnapshot snap = Registry::global().snapshot();
  std::string out;
  for (const HistogramSnapshot& h : snap.histograms) {
    HistogramSnapshot& previous = lastSent[h.name];
    const bool layoutMatches = previous.upperBounds == h.upperBounds &&
                               previous.counts.size() == h.counts.size();
    const std::uint64_t countDelta =
        layoutMatches ? h.count - previous.count : h.count;
    if (countDelta == 0) continue;
    const double sumDelta = layoutMatches ? h.sum - previous.sum : h.sum;
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%.17g", countDelta,
                  sumDelta);
    out += "h," + h.name + ',' + buf;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::uint64_t bucketDelta =
          layoutMatches ? h.counts[i] - previous.counts[i] : h.counts[i];
      if (i < h.upperBounds.size()) {
        std::snprintf(buf, sizeof(buf), ",%.17g:%" PRIu64,
                      h.upperBounds[i], bucketDelta);
      } else {
        std::snprintf(buf, sizeof(buf), ",+Inf:%" PRIu64, bucketDelta);
      }
      out += buf;
    }
    out += '\n';
    previous = h;
  }
  return out;
}

bool decodeMetricDeltas(const std::string& text, MetricDeltas& out) {
  out.clear();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.compare(0, 2, "c,") == 0) {
      if (!parseCounterLine(line, out.counters)) return false;
    } else if (line.compare(0, 2, "h,") == 0) {
      if (!parseHistogramLine(line, out.histograms)) return false;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace hayat::telemetry
