#include "telemetry/series.hpp"

#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

namespace hayat::telemetry {

EpochSeries& EpochSeries::global() {
  static EpochSeries* instance = new EpochSeries();  // never destroyed
  return *instance;
}

void EpochSeries::append(EpochRow row) {
  const std::scoped_lock lock(mutex_);
  rows_.push_back(std::move(row));
}

std::vector<EpochRow> EpochSeries::rows() const {
  const std::scoped_lock lock(mutex_);
  return rows_;
}

std::size_t EpochSeries::size() const {
  const std::scoped_lock lock(mutex_);
  return rows_.size();
}

void EpochSeries::clear() {
  const std::scoped_lock lock(mutex_);
  rows_.clear();
}

namespace {

void putU32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(b, 4);
}

void putU64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(b, 8);
}

void putI32(std::ostream& out, std::int32_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
}

void putI64(std::ostream& out, std::int64_t v) {
  putU64(out, static_cast<std::uint64_t>(v));
}

void putF64(std::ostream& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

bool getU32(std::istream& in, std::uint32_t& v) {
  char b[4];
  if (!in.read(b, 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  return true;
}

bool getU64(std::istream& in, std::uint64_t& v) {
  char b[8];
  if (!in.read(b, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  return true;
}

bool getI32(std::istream& in, std::int32_t& v) {
  std::uint32_t u = 0;
  if (!getU32(in, u)) return false;
  v = static_cast<std::int32_t>(u);
  return true;
}

bool getI64(std::istream& in, std::int64_t& v) {
  std::uint64_t u = 0;
  if (!getU64(in, u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool getF64(std::istream& in, double& v) {
  std::uint64_t bits = 0;
  if (!getU64(in, bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

/// Longest policy label accepted on read (corruption guard).
constexpr std::uint32_t kMaxPolicyLen = 4096;

std::string fmt(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void writeEpochSeriesBinary(std::ostream& out,
                            const std::vector<EpochRow>& rows) {
  out.write("HYEP", 4);
  putU32(out, kEpochSeriesVersion);
  putU64(out, rows.size());
  for (const EpochRow& r : rows) {
    putU32(out, static_cast<std::uint32_t>(r.policy.size()));
    out.write(r.policy.data(),
              static_cast<std::streamsize>(r.policy.size()));
    putI32(out, r.chip);
    putI32(out, r.repetition);
    putF64(out, r.darkFraction);
    putI32(out, r.epochIndex);
    putF64(out, r.startYear);
    putF64(out, r.chipPeakK);
    putF64(out, r.chipTimeAverageK);
    putF64(out, r.minHealth);
    putF64(out, r.averageHealth);
    putF64(out, r.chipFmaxHz);
    putF64(out, r.averageFmaxHz);
    putI64(out, r.dtmEvents);
    putI64(out, r.migrations);
    putI64(out, r.throttles);
    putI32(out, r.throttledSteps);
    putI32(out, r.totalSteps);
    putF64(out, r.throughputRatio);
  }
}

bool readEpochSeriesBinary(std::istream& in, std::vector<EpochRow>& rows) {
  rows.clear();
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, "HYEP", 4) != 0) return false;
  std::uint32_t version = 0;
  if (!getU32(in, version) || version != kEpochSeriesVersion) return false;
  std::uint64_t count = 0;
  if (!getU64(in, count)) return false;

  for (std::uint64_t i = 0; i < count; ++i) {
    EpochRow r;
    std::uint32_t policyLen = 0;
    if (!getU32(in, policyLen) || policyLen > kMaxPolicyLen) {
      rows.clear();
      return false;
    }
    r.policy.resize(policyLen);
    std::int64_t dtmEvents = 0, migrations = 0, throttles = 0;
    if (!(policyLen == 0 ||
          in.read(r.policy.data(), static_cast<std::streamsize>(policyLen))) ||
        !getI32(in, r.chip) || !getI32(in, r.repetition) ||
        !getF64(in, r.darkFraction) || !getI32(in, r.epochIndex) ||
        !getF64(in, r.startYear) || !getF64(in, r.chipPeakK) ||
        !getF64(in, r.chipTimeAverageK) || !getF64(in, r.minHealth) ||
        !getF64(in, r.averageHealth) || !getF64(in, r.chipFmaxHz) ||
        !getF64(in, r.averageFmaxHz) || !getI64(in, dtmEvents) ||
        !getI64(in, migrations) || !getI64(in, throttles) ||
        !getI32(in, r.throttledSteps) || !getI32(in, r.totalSteps) ||
        !getF64(in, r.throughputRatio)) {
      rows.clear();
      return false;
    }
    r.dtmEvents = static_cast<long>(dtmEvents);
    r.migrations = static_cast<long>(migrations);
    r.throttles = static_cast<long>(throttles);
    rows.push_back(std::move(r));
  }
  return true;
}

void writeEpochSeriesCsv(std::ostream& out,
                         const std::vector<EpochRow>& rows) {
  out << "chip,repetition,darkFraction,policy,epochIndex,startYear,"
         "chipPeakK,chipTimeAverageK,minHealth,averageHealth,chipFmaxHz,"
         "averageFmaxHz,dtmEvents,migrations,throttles,throttledSteps,"
         "totalSteps,throughputRatio\n";
  for (const EpochRow& r : rows) {
    out << r.chip << ',' << r.repetition << ',' << fmt(r.darkFraction) << ','
        << r.policy << ',' << r.epochIndex << ',' << fmt(r.startYear) << ','
        << fmt(r.chipPeakK) << ',' << fmt(r.chipTimeAverageK) << ','
        << fmt(r.minHealth) << ',' << fmt(r.averageHealth) << ','
        << fmt(r.chipFmaxHz) << ',' << fmt(r.averageFmaxHz) << ','
        << r.dtmEvents << ',' << r.migrations << ',' << r.throttles << ','
        << r.throttledSteps << ',' << r.totalSteps << ','
        << fmt(r.throughputRatio) << '\n';
  }
}

}  // namespace hayat::telemetry
