#include "telemetry/telemetry.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/series.hpp"
#include "telemetry/span.hpp"

namespace hayat::telemetry {

namespace {

struct RuntimeState {
  std::mutex mutex;
  bool configured = false;
  bool hooksRegistered = false;
  std::string dir;
  std::string role;
  std::map<std::string, std::uint64_t> workerCounters;
  std::map<std::string, HistogramSnapshot> workerHistograms;
  std::terminate_handler previousTerminate = nullptr;
};

RuntimeState& state() {
  static RuntimeState* s = new RuntimeState();  // never destroyed
  return *s;
}

void atexitFlush() { flush(); }

[[noreturn]] void terminateWithDump() {
  // Dump the flight recorder before dying so the last spans of every
  // thread survive the crash.  Keep this best-effort and re-entrancy
  // safe: no locks beyond what flush() takes, then chain to the previous
  // handler (or abort).
  std::fprintf(stderr,
               "hayat: std::terminate — dumping telemetry flight "
               "recorder\n");
  flush();
  std::terminate_handler previous = nullptr;
  {
    RuntimeState& s = state();
    const std::scoped_lock lock(s.mutex);
    previous = s.previousTerminate;
  }
  if (previous != nullptr) previous();
  std::abort();
}

}  // namespace

void configure(const std::string& dir, const std::string& role) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  {
    RuntimeState& s = state();
    const std::scoped_lock lock(s.mutex);
    s.dir = dir;
    s.role = role.empty() ? "hayat" : role;
    s.configured = true;
    if (!s.hooksRegistered) {
      s.hooksRegistered = true;
      std::atexit(atexitFlush);
      s.previousTerminate = std::set_terminate(terminateWithDump);
    }
  }
  // HAYAT_SPAN_SAMPLE=N keeps 1-in-N spans at sampled sites (epoch
  // windows, lifetime epochs) so long sweeps don't flood the recorders.
  if (const char* sample = std::getenv("HAYAT_SPAN_SAMPLE");
      sample != nullptr && sample[0] != '\0') {
    const long every = std::strtol(sample, nullptr, 10);
    if (every > 0) setSpanSampling(static_cast<std::uint32_t>(every));
  }
  setEnabled(true);
}

bool configured() {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.configured;
}

std::string exportDir() {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.dir;
}

std::string exportRole() {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.role;
}

void configureFromEnv(const std::string& roleIfEnv) {
  const char* dir = std::getenv("HAYAT_TELEMETRY");
  if (dir == nullptr || dir[0] == '\0') return;
  configure(dir, roleIfEnv);
}

void mergeWorkerCounters(
    const std::vector<std::pair<std::string, std::uint64_t>>& deltas) {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const auto& [name, delta] : deltas) s.workerCounters[name] += delta;
}

std::map<std::string, std::uint64_t> workerCounters() {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.workerCounters;
}

void mergeWorkerHistograms(const std::vector<HistogramSnapshot>& deltas) {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  for (const HistogramSnapshot& d : deltas) {
    HistogramSnapshot& acc = s.workerHistograms[d.name];
    if (acc.upperBounds != d.upperBounds ||
        acc.counts.size() != d.counts.size()) {
      acc = d;
      acc.name = d.name;
      continue;
    }
    for (std::size_t i = 0; i < d.counts.size(); ++i)
      acc.counts[i] += d.counts[i];
    acc.count += d.count;
    acc.sum += d.sum;
  }
}

std::vector<HistogramSnapshot> workerHistograms() {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  std::vector<HistogramSnapshot> out;
  out.reserve(s.workerHistograms.size());
  for (const auto& [name, h] : s.workerHistograms) {
    out.push_back(h);
    out.back().name = name;
  }
  return out;
}

void resetWorkerCountersForTest() {
  RuntimeState& s = state();
  const std::scoped_lock lock(s.mutex);
  s.workerCounters.clear();
  s.workerHistograms.clear();
}

bool flush() {
  std::string dir, role;
  std::map<std::string, std::uint64_t> remote;
  std::vector<HistogramSnapshot> remoteHists;
  {
    RuntimeState& s = state();
    const std::scoped_lock lock(s.mutex);
    if (!s.configured) return false;
    dir = s.dir;
    role = s.role;
    remote = s.workerCounters;
    remoteHists.reserve(s.workerHistograms.size());
    for (const auto& [name, h] : s.workerHistograms) {
      remoteHists.push_back(h);
      remoteHists.back().name = name;
    }
  }
  const std::string prefix =
      dir + "/" + role + "-" + std::to_string(::getpid());

  bool ok = true;
  {
    std::ofstream out(prefix + ".metrics.prom",
                      std::ios::binary | std::ios::trunc);
    if (out) {
      writePrometheus(out, Registry::global().snapshot(), remote,
                      remoteHists);
      ok = ok && static_cast<bool>(out);
    } else {
      ok = false;
    }
  }
  {
    std::ofstream out(prefix + ".trace.json",
                      std::ios::binary | std::ios::trunc);
    if (out) {
      writeChromeTrace(out, collectAllSpans(), ::getpid());
      ok = ok && static_cast<bool>(out);
    } else {
      ok = false;
    }
  }
  {
    std::ofstream out(prefix + ".epochs.bin",
                      std::ios::binary | std::ios::trunc);
    if (out) {
      writeEpochSeriesBinary(out, EpochSeries::global().rows());
      ok = ok && static_cast<bool>(out);
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace hayat::telemetry
