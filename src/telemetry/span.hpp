// RAII scoped spans and the per-thread flight recorder.
//
// A Span brackets one unit of work (a policy decision, an epoch window,
// an LU factorization).  On destruction it records a completed SpanEvent
// into the calling thread's FlightRecorder — a fixed-capacity ring
// buffer, so the process always holds the *last* N events per thread and
// can dump them on demand or on crash without unbounded memory growth.
//
// Span names must be string literals (the ring stores the pointer, not a
// copy).  When telemetry is disabled a Span is two branches and no clock
// reads; events are only recorded while enabled.
// High-frequency sites (epoch.window, lifetime.epoch — thousands per
// lifetime run) can be sampled: setSpanSampling(N) / HAYAT_SPAN_SAMPLE=N
// keeps 1-in-N of them so multi-hour sweeps don't churn the rings.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "telemetry/metrics.hpp"

namespace hayat::telemetry {

/// Monotonic nanoseconds (steady clock) used for all span timestamps.
std::uint64_t nowNanos();

/// Keep 1-in-N spans at sampled span sites (1 = keep all, the default).
/// Only sites that opt in via sampleSpanSite() are affected.
void setSpanSampling(std::uint32_t everyN);

/// Current sampling divisor (>= 1).
std::uint32_t spanSampleEvery();

/// Call at a sampled span site with a per-site counter; returns true
/// when this occurrence should be recorded (every N-th, starting with
/// the first).  Pass the result to the Span(name, record) overload.
bool sampleSpanSite(std::atomic<std::uint64_t>& siteCounter);

/// One completed span.
struct SpanEvent {
  const char* name = "";        ///< string literal only
  std::uint64_t startNs = 0;    ///< nowNanos() at entry
  std::uint64_t durationNs = 0;
  std::uint32_t threadId = 0;   ///< process-local registration order
  std::uint16_t depth = 0;      ///< nesting level at entry (0 = outermost)
};

/// Fixed-capacity ring of the most recent spans of one thread.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(const SpanEvent& event);

  /// Retained events, oldest first.
  std::vector<SpanEvent> events() const;

  /// Total events ever recorded (>= events().size(); the difference is
  /// what the ring has overwritten).
  std::uint64_t recorded() const;

  std::size_t capacity() const { return ring_.size(); }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

/// The calling thread's recorder (created and registered globally on
/// first use; survives thread exit so late dumps still see its events).
FlightRecorder& threadRecorder();

/// Merged snapshot of every thread's ring, sorted by start time.
std::vector<SpanEvent> collectAllSpans();

/// Scoped span: records [construction, destruction) into the calling
/// thread's flight recorder when telemetry is enabled.
class Span {
 public:
  explicit Span(const char* name);
  /// Sampled-site overload: records only when `record` is true (see
  /// sampleSpanSite()); a false `record` costs one branch.
  Span(const char* name, bool record);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr = telemetry was off at entry
  std::uint64_t startNs_ = 0;
};

}  // namespace hayat::telemetry
