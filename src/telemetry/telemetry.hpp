// Telemetry runtime: configuration, export-on-exit, crash dumps.
//
// One call wires the whole subsystem:
//
//   hayat::telemetry::configure("/tmp/trace", "sweep");
//
// enables collection (see metrics.hpp / span.hpp) and registers an
// atexit flush that writes three sibling files into the directory:
//
//   <role>-<pid>.metrics.prom   Prometheus text metrics
//   <role>-<pid>.trace.json     Chrome trace_event spans
//   <role>-<pid>.epochs.bin     binary per-epoch time series
//
// The <role>-<pid> prefix keeps coordinator and worker processes from
// clobbering each other when they share an export directory; `hayat
// trace export` merges the set afterwards.  A std::terminate hook dumps
// the flight recorder before aborting so the last N spans survive a
// crash.
//
// Workers reached over the wire (exec:/tcp:) have no shared filesystem;
// their counters arrive as deltas piggybacked on Result frames and are
// folded into this process via mergeWorkerCounters(), then exported with
// a {source="worker"} label.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace hayat::telemetry {

/// Enables collection, remembers the export directory (created if
/// missing) and role prefix, and registers the atexit flush plus the
/// terminate-time flight-recorder dump.  Safe to call once per process;
/// later calls update directory and role.
void configure(const std::string& dir, const std::string& role);

/// True after configure() succeeded.
bool configured();

/// Export directory ("" when unconfigured).
std::string exportDir();

/// Role prefix used in export file names.
std::string exportRole();

/// Reads HAYAT_TELEMETRY (export directory) and, if set and non-empty,
/// calls configure(dir, roleIfEnv).  Lets forked/exec'd workers and
/// tests opt in without threading a flag through every entry point.
void configureFromEnv(const std::string& roleIfEnv);

/// Folds counter deltas received from a remote worker into this
/// process's worker aggregate (summed across workers and sends).
void mergeWorkerCounters(
    const std::vector<std::pair<std::string, std::uint64_t>>& deltas);

/// The worker aggregate accumulated by mergeWorkerCounters().
std::map<std::string, std::uint64_t> workerCounters();

/// Folds histogram deltas received from a remote worker into this
/// process's worker aggregate.  Buckets sum per upper bound; a delta
/// whose bucket layout disagrees with the accumulated one replaces it
/// (workers of one fleet share a build, so this only happens in tests).
void mergeWorkerHistograms(const std::vector<HistogramSnapshot>& deltas);

/// The worker histogram aggregate, name-sorted.
std::vector<HistogramSnapshot> workerHistograms();

/// Clears the worker counter and histogram aggregates (tests).
void resetWorkerCountersForTest();

/// Writes the three export files now.  Returns false if any file could
/// not be written.  Called automatically at exit once configured;
/// harmless to call again (files are rewritten in place).
bool flush();

}  // namespace hayat::telemetry
