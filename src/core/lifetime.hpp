// Multi-year accelerated-aging lifetime simulation (Fig. 4, Section VI).
//
// Drives the epoch loop the paper evaluates with: each aging epoch, the
// policy under test produces a mapping from the chip's *current* health
// map, the fine-grained EpochSimulator measures the window (temperatures,
// duty cycles, DTM events), and the measured worst-case conditions are
// upscaled to the epoch length to advance every core's NBTI state.  The
// workload sequence is derived from a seed, so comparison partners see
// identical mixes on identical silicon.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aging/mttf.hpp"
#include "arch/sensors.hpp"
#include "core/system.hpp"
#include "failure/monte_carlo.hpp"
#include "runtime/mapping.hpp"
#include "workload/generator.hpp"

namespace hayat {

/// Lifetime experiment parameters.
struct LifetimeConfig {
  Years horizon = 10.0;          ///< simulated lifetime
  Years epochLength = 0.25;      ///< aging epoch (3 months, Section VI)
  double minDarkFraction = 0.5;  ///< dark-silicon constraint
  Kelvin tsafe = 368.15;
  Hertz nominalFrequency = 3.0e9;
  std::uint64_t workloadSeed = 99;
  /// "the next epoch starts considering the same set of workloads (or
  /// potentially a different one, given multiple sets of workloads)" —
  /// true draws a fresh mix per epoch from the seed stream.
  bool freshMixEachEpoch = true;
  /// Fraction of applications that finish (and are replaced by arrivals)
  /// each epoch.  0 keeps the paper's whole-mix-per-epoch behaviour;
  /// > 0 evolves the mix gradually, the regime where decisions happen
  /// "in intervals of several minutes after the previous decision"
  /// (Section VI).
  double mixChurn = 0.0;
  /// With churn: keep surviving applications pinned where the previous
  /// epoch (including its DTM) left them and place only the arrivals via
  /// MappingPolicy::placeApplication, instead of remapping everything.
  bool incrementalRemap = false;
  /// Optional discrete DVFS ladder the policies must respect (null =
  /// continuous frequency scaling, the paper's assumption).
  std::optional<FrequencyLadder> dvfs;
  /// When set, every epoch runs this exact workload (e.g. an imported
  /// Gem5/McPAT trace, workload/trace_io.hpp) instead of drawing
  /// synthetic mixes from the seed stream.
  std::optional<WorkloadMix> fixedMix;
  /// Measurement error of the aging sensors D_i the policies decide
  /// from: each epoch, the policy sees delay factors read through a
  /// sensor with this noise instead of the true health map.  Default:
  /// ideal sensors.
  SensorNoise healthSensorNoise{};
  std::uint64_t sensorSeed = 4242;
  /// Distribution mode (DESIGN.md §3.14): failure.samples > 0 makes the
  /// run additionally collect per-unit (temperature, stress)
  /// trajectories and Monte Carlo a system-lifetime distribution over
  /// the SoC failure graph; 0 keeps the classic point-MTTF-only run.
  FailureConfig failure{};
};

/// Metrics captured per epoch.
struct EpochRecord {
  Years startYear = 0.0;
  long dtmEvents = 0;           ///< migrations + throttles in the window
  long migrations = 0;
  long throttles = 0;
  Kelvin chipPeak = 0.0;        ///< max T over cores and window time
  Kelvin chipTimeAverage = 0.0; ///< mean T over cores and window time
  int throttledSteps = 0;
  int totalSteps = 0;
  Hertz chipFmax = 0.0;         ///< after this epoch's aging
  Hertz averageFmax = 0.0;      ///< after this epoch's aging
  double minHealth = 1.0;
  double averageHealth = 1.0;
  /// Achieved/required instruction throughput in the window (<= 1; DTM
  /// throttling and unreachable f_min requirements lower it).
  double throughputRatio = 1.0;
};

/// Full lifetime trace of one (chip, policy) run.
struct LifetimeResult {
  std::vector<EpochRecord> epochs;
  std::vector<Hertz> initialFmax;  ///< per core, year 0
  std::vector<Hertz> finalFmax;    ///< per core, horizon end
  Years horizon = 0.0;             ///< simulated span (epochs * length)
  /// Miner's-rule consumed-life fraction per core (Arrhenius wear-out,
  /// accumulated from each epoch's time-average temperatures).
  std::vector<double> coreDamage;
  /// Sampled system-lifetime distribution, present iff the run's
  /// LifetimeConfig::failure.samples > 0.
  std::optional<LifetimeDistribution> distribution;

  /// Chip-level hard-failure summary (series system over cores).
  ChipReliability reliability() const;

  long totalDtmEvents() const;
  long totalMigrations() const;

  /// Time-average of (chipTimeAverage - ambient) across epochs — the
  /// Fig. 8 metric.
  double averageTemperatureOverAmbient(Kelvin ambient) const;

  /// Chip fmax / average fmax at a given year (stepwise over epochs;
  /// year 0 returns the un-aged values).
  Hertz chipFmaxAt(Years year) const;
  Hertz averageFmaxAt(Years year) const;

  /// Aging rate of a frequency metric over the horizon [Hz/year]:
  /// (metric(0) - metric(end)) / horizon.
  double chipFmaxAgingRate() const;
  double averageFmaxAgingRate() const;

  /// First year at which the average fmax drops below `threshold`
  /// (linear interpolation between epochs; returns the horizon if it
  /// never does) — the lifetime metric of Fig. 11's discussion.
  Years yearsUntilAverageFmaxBelow(Hertz threshold) const;
};

/// Cumulative wall-clock nanoseconds spent in each phase of every
/// LifetimeSimulator::run in this process.  The aging/policy/thermal
/// split is what bench_kernels' lifetime-breakdown section reports (and
/// what the CI perf-smoke gate budgets); `other` time is total minus the
/// three instrumented phases.
struct LifetimePhaseNanos {
  std::uint64_t aging = 0;    ///< batched health-map advance
  std::uint64_t policy = 0;   ///< policy.map / placeApplication calls
  std::uint64_t thermal = 0;  ///< EpochSimulator windows
  std::uint64_t total = 0;    ///< whole run() calls
};

/// Snapshot / reset of the process-wide phase accumulators.
LifetimePhaseNanos lifetimePhaseNanos();
void resetLifetimePhaseNanos();

/// The epoch-loop driver.
class LifetimeSimulator {
 public:
  explicit LifetimeSimulator(LifetimeConfig config = {});

  /// Runs `policy` on `system` from the system's current health state to
  /// the horizon.  Call system.resetHealth() between policies to compare
  /// them on identical silicon.
  LifetimeResult run(System& system, MappingPolicy& policy) const;

  const LifetimeConfig& config() const { return config_; }

 private:
  LifetimeConfig config_;
};

}  // namespace hayat
