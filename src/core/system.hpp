// System facade: one chip instance wired to its physical models.
//
// Examples, tests and benches all need the same assembly — generate a
// variation map, build the Chip (with its aging table), a ThermalModel
// for its floorplan, and a LeakageModel bound to its variation.  System
// owns that bundle with stable addresses so the cross-references stay
// valid, and SystemConfig centralizes every knob with the paper's
// Section V defaults.
#pragma once

#include <cstdint>
#include <memory>

#include "arch/chip.hpp"
#include "power/dynamic_power.hpp"
#include "power/leakage.hpp"
#include "runtime/epoch.hpp"
#include "thermal/thermal_model.hpp"
#include "variation/population.hpp"

namespace hayat {

/// Full experimental configuration (defaults reproduce Section V).
struct SystemConfig {
  PopulationConfig population;      ///< geometry + variation statistics
  NbtiConfig nbti;                  ///< Eq. (7) aging model
  AgingTableConfig agingTable;      ///< offline table layout
  LeakageConfig leakage;            ///< 1.18 W / 0.019 W, McPAT T-scaling
  ThermalConfig thermal;            ///< package RC parameters; the
                                    ///< floorplan is overwritten to match
                                    ///< the population geometry
  EpochConfig epoch;                ///< fine-grained window / DTM setup
  int pathsPerCore = 6;
  int elementsPerPath = 24;
};

/// One chip plus its bound physical models.
class System {
 public:
  /// Builds the system for chip `index` of the population seeded by
  /// `populationSeed` (chips 0..index are generated to keep populations
  /// identical across call sites).
  static System create(const SystemConfig& config, std::uint64_t populationSeed,
                       int index = 0);

  /// Builds a system directly from a variation map.
  System(const SystemConfig& config, VariationMap variation,
         std::uint64_t chipSeed);

  System(System&&) = default;
  System& operator=(System&&) = default;

  Chip& chip() { return *chip_; }
  const Chip& chip() const { return *chip_; }
  const ThermalModel& thermal() const { return *thermal_; }
  const LeakageModel& leakage() const { return *leakage_; }
  const SystemConfig& config() const { return config_; }

  /// Resets aging state to year 0 (same chip, fresh health) — used to
  /// run multiple policies on the *same* silicon.
  void resetHealth();

 private:
  SystemConfig config_;
  std::unique_ptr<Chip> chip_;
  std::unique_ptr<ThermalModel> thermal_;
  std::unique_ptr<LeakageModel> leakage_;
  std::uint64_t chipSeed_ = 0;
};

}  // namespace hayat
