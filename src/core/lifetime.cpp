#include "core/lifetime.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace hayat {

ChipReliability LifetimeResult::reliability() const {
  return summarizeReliability(coreDamage, horizon);
}

long LifetimeResult::totalDtmEvents() const {
  long acc = 0;
  for (const EpochRecord& e : epochs) acc += e.dtmEvents;
  return acc;
}

long LifetimeResult::totalMigrations() const {
  long acc = 0;
  for (const EpochRecord& e : epochs) acc += e.migrations;
  return acc;
}

double LifetimeResult::averageTemperatureOverAmbient(Kelvin ambient) const {
  HAYAT_REQUIRE(!epochs.empty(), "empty lifetime result");
  double acc = 0.0;
  for (const EpochRecord& e : epochs) acc += e.chipTimeAverage - ambient;
  return acc / static_cast<double>(epochs.size());
}

namespace {

// Process-wide phase accumulators behind lifetimePhaseNanos().  Always
// ticking (two steady-clock reads per phase per epoch — noise next to
// the work they bracket) so the bench breakdown works with telemetry
// off.
std::atomic<std::uint64_t> agingPhaseNanos{0};
std::atomic<std::uint64_t> policyPhaseNanos{0};
std::atomic<std::uint64_t> thermalPhaseNanos{0};
std::atomic<std::uint64_t> totalPhaseNanos{0};

/// One epoch's mix evolution under churn: surviving applications keep
/// their objects (and, in incremental mode, their placements); departures
/// free budget that fresh arrivals fill.
struct MixEvolution {
  WorkloadMix mix;
  std::vector<int> newIndexOfOld;             ///< -1 = departed
  std::vector<std::pair<int, int>> arrivals;  ///< (new index, parallelism)
};

MixEvolution evolveMix(const WorkloadMix& previous,
                       const Mapping& previousMapping, double churn,
                       int budget, Hertz nominalFrequency, Rng& rng) {
  MixEvolution out;
  out.newIndexOfOld.assign(previous.applications.size(), -1);

  // Count each old application's currently mapped threads.
  std::vector<int> mappedThreads(previous.applications.size(), 0);
  for (const MappedThread& t : previousMapping.threads())
    ++mappedThreads[static_cast<std::size_t>(t.ref.app)];

  int usedBudget = 0;
  for (std::size_t j = 0; j < previous.applications.size(); ++j) {
    if (rng.uniform() < churn) continue;  // finished
    out.newIndexOfOld[j] = static_cast<int>(out.mix.applications.size());
    out.mix.applications.push_back(previous.applications[j]);
    usedBudget += mappedThreads[j] > 0
                      ? mappedThreads[j]
                      : previous.applications[j].maxThreads();
  }

  // Fill the freed budget with arrivals (bounded rejected-draw loop, as
  // in ParsecLikeSuite::makeMix).
  const auto& specs = ParsecLikeSuite::specs();
  int rejected = 0;
  while (usedBudget < budget && rejected < 200) {
    const BenchmarkSpec& spec = specs[static_cast<std::size_t>(
        rng.uniformInt(static_cast<int>(specs.size())))];
    const int remaining = budget - usedBudget;
    if (spec.minParallelism > remaining) {
      ++rejected;
      continue;
    }
    const int maxK = std::min(spec.maxParallelism, remaining);
    const int k =
        spec.minParallelism + rng.uniformInt(maxK - spec.minParallelism + 1);
    const int newIdx = static_cast<int>(out.mix.applications.size());
    out.mix.applications.push_back(
        ParsecLikeSuite::instantiate(spec, rng, nominalFrequency, k));
    out.arrivals.emplace_back(newIdx, k);
    usedBudget += k;
  }
  HAYAT_REQUIRE(!out.mix.applications.empty(),
                "mix evolution produced an empty workload");
  return out;
}

Hertz metricAt(const LifetimeResult& r, Years year,
               Hertz initialValue, Hertz (*pick)(const EpochRecord&)) {
  if (year <= 0.0 || r.epochs.empty()) return initialValue;
  // Epochs are appended in start-year order, so the answer is the last
  // record strictly before `year` (an epoch starting exactly at `year`
  // has not aged the chip yet as of that instant).
  const auto it = std::lower_bound(
      r.epochs.begin(), r.epochs.end(), year,
      [](const EpochRecord& e, Years y) { return e.startYear < y; });
  if (it == r.epochs.begin()) return initialValue;
  return pick(*std::prev(it));
}

}  // namespace

LifetimePhaseNanos lifetimePhaseNanos() {
  LifetimePhaseNanos out;
  out.aging = agingPhaseNanos.load(std::memory_order_relaxed);
  out.policy = policyPhaseNanos.load(std::memory_order_relaxed);
  out.thermal = thermalPhaseNanos.load(std::memory_order_relaxed);
  out.total = totalPhaseNanos.load(std::memory_order_relaxed);
  return out;
}

void resetLifetimePhaseNanos() {
  agingPhaseNanos.store(0, std::memory_order_relaxed);
  policyPhaseNanos.store(0, std::memory_order_relaxed);
  thermalPhaseNanos.store(0, std::memory_order_relaxed);
  totalPhaseNanos.store(0, std::memory_order_relaxed);
}

Hertz LifetimeResult::chipFmaxAt(Years year) const {
  return metricAt(*this, year, maxOf(initialFmax),
                  [](const EpochRecord& e) { return e.chipFmax; });
}

Hertz LifetimeResult::averageFmaxAt(Years year) const {
  return metricAt(*this, year, mean(initialFmax),
                  [](const EpochRecord& e) { return e.averageFmax; });
}

double LifetimeResult::chipFmaxAgingRate() const {
  HAYAT_REQUIRE(!epochs.empty(), "empty lifetime result");
  return (maxOf(initialFmax) - epochs.back().chipFmax) /
         std::max(horizon, 1e-9);
}

double LifetimeResult::averageFmaxAgingRate() const {
  HAYAT_REQUIRE(!epochs.empty(), "empty lifetime result");
  return (mean(initialFmax) - epochs.back().averageFmax) /
         std::max(horizon, 1e-9);
}

Years LifetimeResult::yearsUntilAverageFmaxBelow(Hertz threshold) const {
  HAYAT_REQUIRE(!epochs.empty(), "empty lifetime result");
  Hertz prev = mean(initialFmax);
  Years prevYear = 0.0;
  // With a single epoch its startYear is 0.0, so the spacing must come
  // from the horizon — epochs[0].startYear would collapse the
  // interpolated crossing to year 0.
  const Years epochLen =
      epochs.size() > 1 ? epochs[1].startYear - epochs[0].startYear
                        : horizon / static_cast<double>(epochs.size());
  for (const EpochRecord& e : epochs) {
    const Years endYear = e.startYear + epochLen;
    if (e.averageFmax < threshold) {
      if (prev <= threshold) return prevYear;
      const double frac = (prev - threshold) / (prev - e.averageFmax);
      return prevYear + frac * (endYear - prevYear);
    }
    prev = e.averageFmax;
    prevYear = endYear;
  }
  return prevYear;  // never dropped below within the horizon
}

LifetimeSimulator::LifetimeSimulator(LifetimeConfig config)
    : config_(config) {
  HAYAT_REQUIRE(config.mixChurn >= 0.0 && config.mixChurn <= 1.0,
                "mix churn must be in [0, 1]");
  HAYAT_REQUIRE(!config.incrementalRemap || config.mixChurn > 0.0,
                "incremental remap requires mix churn");
  HAYAT_REQUIRE(config.horizon > 0.0, "horizon must be positive");
  HAYAT_REQUIRE(config.epochLength > 0.0 &&
                    config.epochLength <= config.horizon,
                "epoch length must be positive and within the horizon");
  HAYAT_REQUIRE(config.minDarkFraction >= 0.0 && config.minDarkFraction < 1.0,
                "dark fraction must be in [0, 1)");
}

LifetimeResult LifetimeSimulator::run(System& system,
                                      MappingPolicy& policy) const {
  const telemetry::Span runSpan("lifetime.run");
  const std::uint64_t runT0 = telemetry::nowNanos();
  if (telemetry::enabled()) {
    static telemetry::Counter& runs =
        telemetry::Registry::global().counter("hayat_lifetime_runs_total");
    runs.add();
  }
  Chip& chip = system.chip();
  const int n = chip.coreCount();

  EpochConfig epochConfig = system.config().epoch;
  epochConfig.nominalFrequency = config_.nominalFrequency;
  epochConfig.dtm.tsafe = config_.tsafe;
  EpochSimulator epochSim(chip, system.thermal(), system.leakage(),
                          epochConfig);

  const int budget = std::max(
      1, static_cast<int>(n * (1.0 - config_.minDarkFraction) + 1e-9));

  LifetimeResult result;
  result.horizon = config_.horizon;
  result.coreDamage.assign(static_cast<std::size_t>(n), 0.0);
  result.initialFmax.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    result.initialFmax[static_cast<std::size_t>(i)] = chip.initialFmax(i);

  const MttfModel mttf;
  std::vector<DamageAccumulator> damage(static_cast<std::size_t>(n));
  const int epochCount = static_cast<int>(
      std::llround(config_.horizon / config_.epochLength));
  Rng workloadRng(config_.workloadSeed);
  Rng sensorRng(config_.sensorSeed);
  const bool noisySensors = config_.healthSensorNoise.gaussianSigma > 0.0 ||
                            config_.healthSensorNoise.quantization > 0.0;
  const AgingSensor agingSensor(config_.healthSensorNoise);
  WorkloadMix mix =
      config_.fixedMix.has_value()
          ? *config_.fixedMix
          : ParsecLikeSuite::makeMix(workloadRng, budget,
                                     config_.nominalFrequency);
  if (config_.fixedMix.has_value()) {
    HAYAT_REQUIRE(mix.totalMinThreads() <= budget,
                  "fixed workload mix does not fit the on-core budget");
  }
  // Carry-over state for churn/incremental mode.
  std::optional<Mapping> carriedMapping;
  std::vector<std::pair<int, int>> pendingArrivals;

  // Distribution mode: one trajectory per failure-graph unit, filled as
  // the epoch loop observes the chip.  Units follow buildSocFailureGraph
  // order — cores 0..n-1, then the shared L2 (biased whenever the chip
  // is powered: stress 1.0 at the chip's time-average temperature).
  const bool sampleFailures = config_.failure.samples > 0;
  std::vector<UnitTrajectory> trajectories;
  if (sampleFailures) {
    trajectories.resize(static_cast<std::size_t>(n) + 1);
    for (UnitTrajectory& t : trajectories) {
      t.temperature.reserve(static_cast<std::size_t>(epochCount));
      t.stress.reserve(static_cast<std::size_t>(epochCount));
    }
  }

  for (int e = 0; e < epochCount; ++e) {
    static std::atomic<std::uint64_t> epochSpanSite{0};
    const telemetry::Span epochSpan(
        "lifetime.epoch", telemetry::sampleSpanSite(epochSpanSite));
    if (telemetry::enabled()) {
      static telemetry::Counter& epochs =
          telemetry::Registry::global().counter("hayat_lifetime_epochs_total");
      epochs.add();
    }
    const Years startYear = e * config_.epochLength;
    if (!config_.fixedMix.has_value() && e > 0) {
      if (config_.mixChurn > 0.0) {
        HAYAT_REQUIRE(carriedMapping.has_value(),
                      "churn mode lost the previous mapping");
        MixEvolution evo =
            evolveMix(mix, *carriedMapping, config_.mixChurn, budget,
                      config_.nominalFrequency, workloadRng);
        if (config_.incrementalRemap) {
          // Rebuild the carried mapping against the new mix: surviving
          // threads stay on their cores at their (restored) required
          // frequency; departed applications free their cores.
          Mapping rebased(n);
          for (const MappedThread& t : carriedMapping->threads()) {
            const int newApp =
                evo.newIndexOfOld[static_cast<std::size_t>(t.ref.app)];
            if (newApp < 0) continue;
            rebased.assign(ThreadRef{newApp, t.ref.thread}, t.core,
                           t.requiredFrequency, t.requiredFrequency);
          }
          carriedMapping = std::move(rebased);
          pendingArrivals = std::move(evo.arrivals);
        }
        mix = std::move(evo.mix);
      } else if (config_.freshMixEachEpoch) {
        mix = ParsecLikeSuite::makeMix(workloadRng, budget,
                                       config_.nominalFrequency);
      }
    }

    // Sensor view of the health map: ideal sensors pass the truth
    // through; noisy sensors re-read every core's delay factor.
    std::optional<HealthMap> observed;
    if (noisySensors) {
      observed.emplace(result.initialFmax);
      for (int i = 0; i < n; ++i) {
        observed->state(i) = CoreAgingState::fromDelayFactor(
            agingSensor.read(chip.health().state(i).delayFactor(),
                             sensorRng));
      }
    }

    PolicyContext ctx;
    ctx.chip = &chip;
    ctx.thermal = &system.thermal();
    ctx.leakage = &system.leakage();
    ctx.mix = &mix;
    ctx.observedHealth = observed.has_value() ? &*observed : nullptr;
    ctx.dvfs = config_.dvfs.has_value() ? &*config_.dvfs : nullptr;
    ctx.observedWear = &result.coreDamage;
    ctx.minDarkFraction = config_.minDarkFraction;
    ctx.nominalFrequency = config_.nominalFrequency;
    ctx.tsafe = config_.tsafe;
    ctx.epochYears = config_.epochLength;
    ctx.elapsedYears = startYear;

    Mapping mapping(n);
    {
      static std::atomic<std::uint64_t> policySpanSite{0};
      const telemetry::Span policySpan(
          "lifetime.policy_map", telemetry::sampleSpanSite(policySpanSite));
      const std::uint64_t t0 = telemetry::nowNanos();
      if (config_.incrementalRemap && e > 0) {
        // The Section VI mid-epoch regime: only arrivals are (re)placed.
        mapping = *carriedMapping;
        for (const auto& [appIndex, k] : pendingArrivals)
          mapping = policy.placeApplication(ctx, mapping, appIndex, k);
        pendingArrivals.clear();
      } else {
        mapping = policy.map(ctx);
      }
      policyPhaseNanos.fetch_add(telemetry::nowNanos() - t0,
                                 std::memory_order_relaxed);
    }
    const std::uint64_t thermalT0 = telemetry::nowNanos();
    const EpochResult window = epochSim.run(mapping, mix);
    thermalPhaseNanos.fetch_add(telemetry::nowNanos() - thermalT0,
                                std::memory_order_relaxed);
    if (config_.mixChurn > 0.0) carriedMapping = window.finalMapping;

    // Upscale the window's worst-case conditions to the epoch length
    // (Section IV-B: "We record the worst-case temperature over time and
    // the duty cycle for each core").  The NBTI advance runs batched —
    // one cursor-warmed sweep over all cores (aging/health.hpp) — and
    // the Arrhenius damage bookkeeping stays per core.
    {
      static std::atomic<std::uint64_t> agingSpanSite{0};
      const telemetry::Span agingSpan(
          "lifetime.aging_advance", telemetry::sampleSpanSite(agingSpanSite));
      const std::uint64_t t0 = telemetry::nowNanos();
      chip.health().advanceAll(chip.agingTable(),
                               window.peakTemperature.data(),
                               window.duty.data(), config_.epochLength);
      agingPhaseNanos.fetch_add(telemetry::nowNanos() - t0,
                                std::memory_order_relaxed);
    }
    for (int i = 0; i < n; ++i) {
      const auto si = static_cast<std::size_t>(i);
      damage[si].accumulate(mttf, window.averageTemperature[si],
                            config_.epochLength);
      result.coreDamage[si] = damage[si].damage();
    }
    if (sampleFailures) {
      for (int i = 0; i < n; ++i) {
        const auto si = static_cast<std::size_t>(i);
        trajectories[si].temperature.push_back(window.averageTemperature[si]);
        trajectories[si].stress.push_back(window.duty[si]);
      }
      trajectories[static_cast<std::size_t>(n)].temperature.push_back(
          window.chipTimeAverage);
      trajectories[static_cast<std::size_t>(n)].stress.push_back(1.0);
    }

    EpochRecord record;
    record.startYear = startYear;
    record.dtmEvents = window.dtm.events();
    record.migrations = window.dtm.migrations;
    record.throttles = window.dtm.throttles;
    record.chipPeak = window.chipPeak;
    record.chipTimeAverage = window.chipTimeAverage;
    record.throttledSteps = window.throttledSteps;
    record.totalSteps = window.totalSteps;
    record.throughputRatio = window.throughputRatio();
    record.chipFmax = chip.chipFmax();
    record.averageFmax = chip.averageFmax();
    const std::vector<double> healths = chip.health().healthAll();
    record.minHealth = minOf(healths);
    record.averageHealth = mean(healths);
    result.epochs.push_back(record);
  }

  result.finalFmax = chip.health().currentFmaxAll();
  if (sampleFailures) {
    SocFailureTopology topology;
    topology.coreCount = n;
    topology.minAliveCoreFraction = config_.failure.minAliveCoreFraction;
    const FailureMonteCarlo mc(config_.failure,
                               buildSocFailureGraph(topology));
    result.distribution = mc.run(trajectories, config_.epochLength);
  }
  totalPhaseNanos.fetch_add(telemetry::nowNanos() - runT0,
                            std::memory_order_relaxed);
  return result;
}

}  // namespace hayat
