// Exhaustive (optimal) aging-aware mapper for small instances.
//
// Section IV-A formulates the joint patterning/mapping problem as an ILP
// maximizing the sum of predicted next healths (Eq. 6) subject to Tsafe
// (Eq. 4) and one-thread-per-core (Eq. 5), and notes that it "is not
// feasible to be evaluated at run time in polynomial time complexity".
//
// This policy solves that formulation *exactly* by enumerating every
// thread-to-core assignment — practical only for small chips and thread
// counts, which is precisely its purpose here: an offline optimality
// reference that (a) quantifies how close Algorithm 1's heuristic gets
// (tests + bench_ablation_optimal) and (b) demonstrates why the
// exhaustive approach cannot run online (its cost explodes factorially;
// the overhead bench shows the contrast).
#pragma once

#include <cstdint>

#include "runtime/health_estimator.hpp"
#include "runtime/mapping.hpp"

namespace hayat {

/// Configuration of the exhaustive search.
struct ExhaustiveConfig {
  /// Hard cap on enumerated assignments; instances above it throw, which
  /// keeps accidental use on full-size chips from hanging the caller.
  std::uint64_t maxAssignments = 2'000'000;
  DutyPolicy dutyPolicy = DutyPolicy::Known;
};

/// The Eq. (3)-(6) optimum by enumeration.
class ExhaustivePolicy : public MappingPolicy {
 public:
  explicit ExhaustivePolicy(ExhaustiveConfig config = {});

  std::string name() const override { return "Exhaustive"; }

  Mapping map(const PolicyContext& context) override;

  /// The Eq. (6) objective of an arbitrary mapping under a context: sum
  /// of estimated end-of-epoch healths over all cores, or -1 if the
  /// mapping's predicted temperatures violate Tsafe (Eq. 4).  Exposed so
  /// tests and benches can score heuristic mappings on the same scale.
  static double objective(const PolicyContext& context, const Mapping& mapping);

  /// Number of assignments the search would enumerate for the context
  /// (threads placed one per core): N * (N-1) * ... * (N-T+1).
  static std::uint64_t assignmentCount(int cores, int threads);

 private:
  ExhaustiveConfig config_;
};

}  // namespace hayat
