// The Hayat run-time aging-management policy (Section IV, Algorithm 1).
//
// For every runnable thread, Hayat evaluates each candidate core:
//
//   line  8:  predictTemperature  — incremental superposition prediction
//             of the chip thermal profile with the candidate placed,
//   line 12:  discard candidates that would violate T_i < Tsafe,
//   line 15:  estimateNextHealth  — 3D-aging-table lookup of the
//             candidate's end-of-epoch health under the predicted
//             temperature and the thread's duty cycle,
//   line 17-19: aggregate Tavg/Tmax/Havg for the candidate record,
//   line 22:  sort candidates by the weighting function (Eq. 9) and
//   line 23:  assign the thread to the best candidate.
//
// Weighting (Eq. 9):
//
//   w = cap(wmax, alpha / (fmax_i,t - freq)) + beta * H_next / H_t
//
// The first term implements frequency matching: cores whose aged fmax
// barely exceeds the thread's requirement score high, so fast cores are
// *preserved* — kept dark for later life or for deadline-critical
// single-threaded work (Section II's "secondary effect").  The second
// term prefers placements that degrade the candidate least — cool,
// thermally isolated cores.  The paper prints `max(wmax, ...)` but
// describes the term as "limited to a certain maximum weight wmax"; we
// implement the cap the prose describes.  Early-aging runs balance-heavy
// coefficients (alpha 0.6, beta 1.0) and late-aging runs matching-heavy
// ones (alpha 4, beta 0.3), switching at `lateAgingOnset` (Section V).
//
// The Dark Core Map falls out of the assignment: cores Hayat leaves
// without threads are power-gated, and because every candidate passed the
// Tsafe check, the resulting DCM keeps Tpeak < Tsafe by construction.
#pragma once

#include <cstdint>

#include "runtime/health_estimator.hpp"
#include "runtime/mapping.hpp"
#include "runtime/thermal_predictor.hpp"

namespace hayat {

/// Eq. (9) coefficients and mode switching.
struct HayatConfig {
  double earlyAlphaGHz = 0.6;  ///< alpha, in GHz units (Section V: ">1.0 weight at 600 MHz")
  double earlyBeta = 1.0;
  double lateAlphaGHz = 4.0;
  double lateBeta = 0.3;
  double wmax = 10.0;
  /// Elapsed lifetime at which the weighting switches from the
  /// duty-cycle-critical early-aging regime to the temperature-critical
  /// late-aging regime (Fig. 1 discussion).
  Years lateAgingOnset = 3.0;
  DutyPolicy dutyPolicy = DutyPolicy::Known;
  int leakageIterations = 2;  ///< predictor correction sweeps
  /// Optional wear-balancing extension (OFF by default — not part of the
  /// paper's Eq. 9): subtracts wearGamma * consumedLife(candidate) from
  /// the weight, steering work away from cores whose hard-failure budget
  /// is most spent.  Motivated by bench_ablation_mttf, which shows pure
  /// frequency matching concentrates usage on the same tight-match cores.
  double wearGamma = 0.0;
  /// Opt-in spatial candidate pruning (DESIGN.md §3.11): after the first
  /// placement of a round, only the `pruneRadius` feasible cores with the
  /// strongest kernel influence on the previously committed site are
  /// evaluated.  0 (the default) keeps the exact full candidate sweep;
  /// the scoring arithmetic is unchanged either way, so the chosen
  /// weight is always an exact score — pruning can only shrink the set
  /// it is taken over.  HAYAT_EXACT_CANDIDATES=1 forces the exact sweep
  /// regardless of this knob (the A/B twin, mirroring
  /// HAYAT_SCALAR_AGING).  Pruned sets are nested in the radius: a
  /// larger pruneRadius never removes a candidate a smaller one kept.
  int pruneRadius = 0;
};

/// One evaluated candidate (the struct pushed into list S, line 19).
/// Only fields the selection reads are kept: the weight, the tie-break
/// average temperature, and the health that fed the weight.  The per-
/// candidate Tmax exists only as the Tsafe guard boolean (line 12), so
/// it is never materialized (ThermalPredictor::evaluateCandidate).
struct HayatCandidate {
  int core = -1;
  double weight = 0.0;
  double candidateNextHealth = 0.0;
  double averageNextTemperature = 0.0;
};

/// One committed placement of the most recent map()/placeApplication()
/// call (introspection for tests and the quality bench): which core won,
/// its exact-scored weight, and how many candidates the pruning stage
/// let through.
struct HayatPlacementDecision {
  int core = -1;
  double weight = 0.0;  ///< exact Eq. 9 score of the chosen candidate
  int candidatesFeasible = 0;  ///< idle + fast-enough cores this round
  int candidatesEvaluated = 0;  ///< after spatial pruning (== feasible
                                ///< when pruning is off or inactive)
};

/// Algorithm 1.
class HayatPolicy : public MappingPolicy {
 public:
  explicit HayatPolicy(HayatConfig config = {});

  std::string name() const override { return "Hayat"; }

  Mapping map(const PolicyContext& context) override;

  /// The mid-epoch path (Section VI overhead discussion): "In case a new
  /// application starts within an aging epoch (typically in intervals of
  /// several minutes after the previous decision)" only the arriving
  /// application's threads are placed; already-running threads stay where
  /// they are.  `appIndex` selects the arriving application within the
  /// context's mix; `activeThreads` its malleable parallelism (<= its
  /// maxThreads; <= 0 keeps maximum parallelism).  Throws if the addition
  /// would violate the dark-silicon budget.
  Mapping placeApplication(const PolicyContext& context,
                           const Mapping& existing, int appIndex,
                           int activeThreads = -1) override;

  /// Eq. (9) for one candidate (exposed for unit tests): `slackGHz` is
  /// fmax_i,t - freq in GHz, `healthRatio` is H_next / H_t, `wear` the
  /// candidate's consumed-life fraction (0 disables the extension term).
  double weightOf(double slackGHz, double healthRatio, Years elapsed,
                  double wear = 0.0) const;

  const HayatConfig& config() const { return config_; }

  /// Placement decisions of the most recent map()/placeApplication()
  /// call, in commit order.
  const std::vector<HayatPlacementDecision>& lastDecisions() const {
    return lastDecisions_;
  }

 private:
  /// Shared Algorithm-1 core: places `threads` into `mapping` (which may
  /// already hold running threads).
  void placeThreads(const PolicyContext& context,
                    std::vector<RunnableThread> threads, Mapping& mapping);

  /// Buffers reused across map() calls so the candidate loop is
  /// allocation-free in steady state (DESIGN §3.10; tracked by
  /// hayatPlacementLoopAllocs).
  struct Scratch {
    ThermalPredictor::Baseline baseline;
    Vector predictScratch;
    std::vector<int> candidates;
    std::vector<HayatCandidate> evaluated;
    AgingSnapshot snapshot;
    // Tsafe survivors of one placement round; health is estimated
    // lazily in weight-upper-bound order (chunked nextHealthMany calls
    // so the inverse solves still interleave).
    std::vector<int> survivorCores;
    std::vector<double> survivorTemp;
    std::vector<double> healthUb;    ///< per-survivor weight upper bound
    std::vector<int> healthOrder;    ///< survivor indices, bound-descending
    // Tsafe rejects of the round, with the deltas/floors the main sweep
    // already paid for — the all-rejected fallback scan reuses them
    // instead of re-running the leakage jump per candidate.
    std::vector<int> rejectCores;
    std::vector<double> rejectDelta;  ///< CandidateDecision::deltaNext
    std::vector<double> rejectFloor;  ///< O(1) lower bound on the peak
    std::vector<int> rejectOrder;     ///< reject indices, floor-ascending
    // Spatial pruning (§3.11): cores in descending influence order on
    // the last committed site, plus stamp arrays for O(1) membership /
    // keep marks without per-round clears.
    std::vector<int> influenceOrder;
    std::vector<std::uint64_t> memberStamp;
    std::vector<std::uint64_t> keepStamp;
  };

  HayatConfig config_;
  Scratch scratch_;
  std::vector<HayatPlacementDecision> lastDecisions_;
  std::uint64_t pruneStamp_ = 0;
};

/// Heap allocations observed inside HayatPolicy's per-thread placement
/// loop across the process.  Steady-state contract: after a policy's
/// first map() on a given chip size, the loop must not contribute.
/// Always zero when allocCounterActive() is false.
std::uint64_t hayatPlacementLoopAllocs();

}  // namespace hayat
