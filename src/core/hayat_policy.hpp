// The Hayat run-time aging-management policy (Section IV, Algorithm 1).
//
// For every runnable thread, Hayat evaluates each candidate core:
//
//   line  8:  predictTemperature  — incremental superposition prediction
//             of the chip thermal profile with the candidate placed,
//   line 12:  discard candidates that would violate T_i < Tsafe,
//   line 15:  estimateNextHealth  — 3D-aging-table lookup of the
//             candidate's end-of-epoch health under the predicted
//             temperature and the thread's duty cycle,
//   line 17-19: aggregate Tavg/Tmax/Havg for the candidate record,
//   line 22:  sort candidates by the weighting function (Eq. 9) and
//   line 23:  assign the thread to the best candidate.
//
// Weighting (Eq. 9):
//
//   w = cap(wmax, alpha / (fmax_i,t - freq)) + beta * H_next / H_t
//
// The first term implements frequency matching: cores whose aged fmax
// barely exceeds the thread's requirement score high, so fast cores are
// *preserved* — kept dark for later life or for deadline-critical
// single-threaded work (Section II's "secondary effect").  The second
// term prefers placements that degrade the candidate least — cool,
// thermally isolated cores.  The paper prints `max(wmax, ...)` but
// describes the term as "limited to a certain maximum weight wmax"; we
// implement the cap the prose describes.  Early-aging runs balance-heavy
// coefficients (alpha 0.6, beta 1.0) and late-aging runs matching-heavy
// ones (alpha 4, beta 0.3), switching at `lateAgingOnset` (Section V).
//
// The Dark Core Map falls out of the assignment: cores Hayat leaves
// without threads are power-gated, and because every candidate passed the
// Tsafe check, the resulting DCM keeps Tpeak < Tsafe by construction.
#pragma once

#include <cstdint>

#include "runtime/health_estimator.hpp"
#include "runtime/mapping.hpp"
#include "runtime/thermal_predictor.hpp"

namespace hayat {

/// Eq. (9) coefficients and mode switching.
struct HayatConfig {
  double earlyAlphaGHz = 0.6;  ///< alpha, in GHz units (Section V: ">1.0 weight at 600 MHz")
  double earlyBeta = 1.0;
  double lateAlphaGHz = 4.0;
  double lateBeta = 0.3;
  double wmax = 10.0;
  /// Elapsed lifetime at which the weighting switches from the
  /// duty-cycle-critical early-aging regime to the temperature-critical
  /// late-aging regime (Fig. 1 discussion).
  Years lateAgingOnset = 3.0;
  DutyPolicy dutyPolicy = DutyPolicy::Known;
  int leakageIterations = 2;  ///< predictor correction sweeps
  /// Optional wear-balancing extension (OFF by default — not part of the
  /// paper's Eq. 9): subtracts wearGamma * consumedLife(candidate) from
  /// the weight, steering work away from cores whose hard-failure budget
  /// is most spent.  Motivated by bench_ablation_mttf, which shows pure
  /// frequency matching concentrates usage on the same tight-match cores.
  double wearGamma = 0.0;
};

/// One evaluated candidate (the struct pushed into list S, line 19).
struct HayatCandidate {
  int core = -1;
  double weight = 0.0;
  double candidateNextHealth = 0.0;
  double averageNextTemperature = 0.0;
  double maxNextTemperature = 0.0;
};

/// Algorithm 1.
class HayatPolicy : public MappingPolicy {
 public:
  explicit HayatPolicy(HayatConfig config = {});

  std::string name() const override { return "Hayat"; }

  Mapping map(const PolicyContext& context) override;

  /// The mid-epoch path (Section VI overhead discussion): "In case a new
  /// application starts within an aging epoch (typically in intervals of
  /// several minutes after the previous decision)" only the arriving
  /// application's threads are placed; already-running threads stay where
  /// they are.  `appIndex` selects the arriving application within the
  /// context's mix; `activeThreads` its malleable parallelism (<= its
  /// maxThreads; <= 0 keeps maximum parallelism).  Throws if the addition
  /// would violate the dark-silicon budget.
  Mapping placeApplication(const PolicyContext& context,
                           const Mapping& existing, int appIndex,
                           int activeThreads = -1) override;

  /// Eq. (9) for one candidate (exposed for unit tests): `slackGHz` is
  /// fmax_i,t - freq in GHz, `healthRatio` is H_next / H_t, `wear` the
  /// candidate's consumed-life fraction (0 disables the extension term).
  double weightOf(double slackGHz, double healthRatio, Years elapsed,
                  double wear = 0.0) const;

  const HayatConfig& config() const { return config_; }

 private:
  /// Shared Algorithm-1 core: places `threads` into `mapping` (which may
  /// already hold running threads).
  void placeThreads(const PolicyContext& context,
                    std::vector<RunnableThread> threads, Mapping& mapping);

  /// Buffers reused across map() calls so the candidate loop is
  /// allocation-free in steady state (DESIGN §3.10; tracked by
  /// hayatPlacementLoopAllocs).
  struct Scratch {
    ThermalPredictor::Baseline baseline;
    Vector predictScratch;
    Vector tNext;
    Vector tPeak;
    std::vector<int> candidates;
    std::vector<HayatCandidate> evaluated;
    AgingSnapshot snapshot;
    // Tsafe survivors of one placement round, scored in one batched
    // nextHealthMany call (their inverse solves interleave).
    std::vector<int> survivorCores;
    std::vector<double> survivorTemp;
    std::vector<double> survivorHealth;
  };

  HayatConfig config_;
  Scratch scratch_;
};

/// Heap allocations observed inside HayatPolicy's per-thread placement
/// loop across the process.  Steady-state contract: after a policy's
/// first map() on a given chip size, the loop must not contribute.
/// Always zero when allocCounterActive() is false.
std::uint64_t hayatPlacementLoopAllocs();

}  // namespace hayat
