#include "core/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hayat {

namespace {
constexpr const char* kHealthMagic = "hayat-healthmap-v1";
}

void saveHealthMap(std::ostream& out, const HealthMap& map) {
  out << kHealthMagic << '\n' << map.coreCount() << '\n';
  out << std::setprecision(17);
  for (int i = 0; i < map.coreCount(); ++i) {
    out << map.initialFmax(i) << ' ' << map.state(i).delayFactor() << '\n';
  }
  HAYAT_REQUIRE(out.good(), "health map write failed");
}

HealthMap loadHealthMap(std::istream& in) {
  std::string magic;
  in >> magic;
  HAYAT_REQUIRE(magic == kHealthMagic,
                "not a hayat health map checkpoint (bad magic '" + magic +
                    "')");
  int cores = 0;
  in >> cores;
  HAYAT_REQUIRE(in.good() && cores > 0, "corrupt health map header");
  std::vector<Hertz> fmax(static_cast<std::size_t>(cores));
  std::vector<double> delay(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i) {
    in >> fmax[static_cast<std::size_t>(i)] >> delay[static_cast<std::size_t>(i)];
    HAYAT_REQUIRE(!in.fail(), "corrupt health map entry");
  }
  HealthMap map(std::move(fmax));
  for (int i = 0; i < cores; ++i)
    map.state(i) = CoreAgingState::fromDelayFactor(
        delay[static_cast<std::size_t>(i)]);
  return map;
}

void saveHealthMapFile(const std::string& path, const HealthMap& map) {
  std::ofstream out(path);
  HAYAT_REQUIRE(out.is_open(), "cannot open '" + path + "' for writing");
  saveHealthMap(out, map);
}

HealthMap loadHealthMapFile(const std::string& path) {
  std::ifstream in(path);
  HAYAT_REQUIRE(in.is_open(), "cannot open '" + path + "' for reading");
  return loadHealthMap(in);
}

void writeLifetimeCsv(std::ostream& out, const LifetimeResult& result) {
  out << "startYear,dtmEvents,migrations,throttles,chipPeakK,"
         "chipTimeAverageK,throttledSteps,totalSteps,chipFmaxHz,"
         "averageFmaxHz,minHealth,averageHealth,throughputRatio\n";
  out << std::setprecision(12);
  for (const EpochRecord& e : result.epochs) {
    out << e.startYear << ',' << e.dtmEvents << ',' << e.migrations << ','
        << e.throttles << ',' << e.chipPeak << ',' << e.chipTimeAverage
        << ',' << e.throttledSteps << ',' << e.totalSteps << ','
        << e.chipFmax << ',' << e.averageFmax << ',' << e.minHealth << ','
        << e.averageHealth << ',' << e.throughputRatio << '\n';
  }
  HAYAT_REQUIRE(out.good(), "lifetime CSV write failed");
}

}  // namespace hayat
