#include "core/hayat_policy.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/alloc_counter.hpp"
#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace hayat {

namespace {
std::atomic<std::uint64_t> placementLoopAllocs{0};

/// A/B twin for the spatial pruning knob (mirrors HAYAT_SCALAR_AGING):
/// when set, the exact full candidate sweep runs regardless of
/// HayatConfig::pruneRadius, so pruned and exact results can be compared
/// on the same spec.
bool exactCandidatesRequested() {
  const char* env = std::getenv("HAYAT_EXACT_CANDIDATES");
  return env != nullptr && env[0] == '1';
}

/// Commits between full fixed-point re-anchors of the prediction
/// baseline (§3.11).  Each commit is a rank-1 fold that neglects the
/// leakage re-coupling of the *other* powered cores, and that neglect
/// compounds across a round — measured drift versus the full refresh
/// stays under ~4 K at this cadence across 4x4..16x16 (pinned in
/// tests/test_hayat_policy.cpp), while the amortized refresh cost per
/// placement drops by the same factor of 8.
constexpr int kBaselineAnchorInterval = 8;

/// Survivors whose health is estimated per lazy-selection step: large
/// enough that AgingTable::advanceDelayFactorMany's 4-lane bisection
/// interleave stays saturated, small enough that one step past the
/// stopping bound wastes little work.
constexpr int kHealthChunk = 8;
}  // namespace

std::uint64_t hayatPlacementLoopAllocs() {
  return placementLoopAllocs.load();
}

HayatPolicy::HayatPolicy(HayatConfig config) : config_(config) {
  HAYAT_REQUIRE(config.wmax > 0.0, "wmax must be positive");
  HAYAT_REQUIRE(config.earlyAlphaGHz > 0.0 && config.lateAlphaGHz > 0.0,
                "alpha coefficients must be positive");
  HAYAT_REQUIRE(config.earlyBeta >= 0.0 && config.lateBeta >= 0.0,
                "beta coefficients must be non-negative");
  HAYAT_REQUIRE(config.lateAgingOnset >= 0.0, "negative late-aging onset");
  HAYAT_REQUIRE(config.pruneRadius >= 0, "negative prune radius");
}

double HayatPolicy::weightOf(double slackGHz, double healthRatio,
                             Years elapsed, double wear) const {
  const bool late = elapsed >= config_.lateAgingOnset;
  const double alpha = late ? config_.lateAlphaGHz : config_.earlyAlphaGHz;
  const double beta = late ? config_.lateBeta : config_.earlyBeta;
  // Frequency-matching term, capped at wmax ("limited to a certain
  // maximum weight"); zero/negative slack is a perfect match -> wmax.
  const double matching =
      slackGHz <= 0.0 ? config_.wmax
                      : std::min(config_.wmax, alpha / slackGHz);
  return matching + beta * healthRatio - config_.wearGamma * wear;
}

Mapping HayatPolicy::map(const PolicyContext& context) {
  const telemetry::Span mapSpan("policy.hayat.map");
  if (telemetry::enabled()) {
    static telemetry::Counter& decisions =
        telemetry::Registry::global().counter(
            "hayat_policy_hayat_decisions_total");
    decisions.add();
  }
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  const int n = context.chip->coreCount();
  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  const std::vector<int> parallelism =
      chooseParallelism(*context.mix, maxOn);

  Mapping mapping(n);
  placeThreads(context, runnableThreads(*context.mix, parallelism), mapping);
  return mapping;
}

Mapping HayatPolicy::placeApplication(const PolicyContext& context,
                                      const Mapping& existing, int appIndex,
                                      int activeThreads) {
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  HAYAT_REQUIRE(appIndex >= 0 &&
                    appIndex < static_cast<int>(context.mix->applications.size()),
                "application index out of range");
  const Application& app =
      context.mix->applications[static_cast<std::size_t>(appIndex)];
  const int k = activeThreads > 0 ? activeThreads : app.maxThreads();
  HAYAT_REQUIRE(k >= app.minThreads() && k <= app.maxThreads(),
                "active thread count outside the malleable range");

  const int n = context.chip->coreCount();
  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  HAYAT_REQUIRE(existing.assignedCount() + k <= maxOn,
                "arriving application would violate the dark-silicon "
                "budget");

  std::vector<RunnableThread> arriving;
  for (int t = 0; t < k; ++t) {
    RunnableThread rt;
    rt.ref = {appIndex, t};
    rt.minFrequency = app.minFrequencyAt(t, k);
    rt.averagePower = app.thread(t).averagePower();
    rt.peakPower = app.thread(t).peakPower();
    rt.averageDuty = app.thread(t).averageDuty();
    arriving.push_back(rt);
  }

  Mapping mapping = existing;
  placeThreads(context, std::move(arriving), mapping);
  return mapping;
}

void HayatPolicy::placeThreads(const PolicyContext& context,
                               std::vector<RunnableThread> threads,
                               Mapping& mapping) {
  const Chip& chip = *context.chip;
  const int n = chip.coreCount();

  // Work-list order: most demanding threads first — they have the fewest
  // feasible cores, so they choose before the pool thins out.
  std::sort(threads.begin(), threads.end(),
            [](const RunnableThread& a, const RunnableThread& b) {
              return a.minFrequency > b.minFrequency;
            });

  const ThermalPredictor predictor(*context.thermal, *context.leakage,
                                   config_.leakageIterations);
  const HealthEstimator estimator(chip.agingTable(), config_.dutyPolicy);

  // Pre-warm every buffer the placement loop touches so the loop itself
  // is allocation-free in steady state (the DESIGN.md §3.10 contract; the
  // delta is tracked in hayatPlacementLoopAllocs).  The baseline reflects
  // whatever is already running in the mapping; the aging snapshot
  // captures the chip's current delay factors, which cannot change while
  // the policy deliberates, so every candidate reads from the copy.
  // refreshBaseline here is the one full fixed-point anchor of the
  // round — every committed placement afterwards folds in as a rank-1
  // delta (ThermalPredictor::commitPlacement, §3.11).
  Scratch& sc = scratch_;
  mapping.averageDynamicPowerInto(*context.mix, context.nominalFrequency,
                                  sc.baseline.dynamicPower);
  sc.baseline.poweredOn.assign(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i)
    sc.baseline.poweredOn[static_cast<std::size_t>(i)] = mapping.coreBusy(i);
  predictor.refreshBaseline(sc.baseline, sc.predictScratch);
  sc.snapshot.capture(estimator, context.health());
  sc.candidates.reserve(static_cast<std::size_t>(n));
  sc.evaluated.reserve(static_cast<std::size_t>(n));
  sc.survivorCores.reserve(static_cast<std::size_t>(n));
  sc.survivorTemp.reserve(static_cast<std::size_t>(n));
  sc.healthUb.resize(static_cast<std::size_t>(n));
  sc.healthOrder.resize(static_cast<std::size_t>(n));
  sc.rejectCores.reserve(static_cast<std::size_t>(n));
  sc.rejectDelta.reserve(static_cast<std::size_t>(n));
  sc.rejectFloor.reserve(static_cast<std::size_t>(n));
  sc.rejectOrder.resize(static_cast<std::size_t>(n));
  const bool pruneActive =
      config_.pruneRadius > 0 && !exactCandidatesRequested();
  if (pruneActive) {
    sc.influenceOrder.resize(static_cast<std::size_t>(n));
    sc.memberStamp.resize(static_cast<std::size_t>(n), 0);
    sc.keepStamp.resize(static_cast<std::size_t>(n), 0);
  }
  lastDecisions_.clear();
  lastDecisions_.reserve(threads.size());
  // Telemetry totals are accumulated locally and emitted after the loop
  // so sharded-counter bootstrap cannot charge the alloc contract.
  std::uint64_t candidatesFeasibleTotal = 0;
  std::uint64_t candidatesPrunedTotal = 0;
  int lastCommitted = -1;  // no committed site yet this round
  int commitsSinceAnchor = 0;
  const std::uint64_t allocsBefore = heapAllocationCount();

  for (const RunnableThread& t : threads) {
    // Candidate cores: idle and fast enough at their current age; if the
    // requirement is infeasible everywhere, fall back to all idle cores
    // (best effort — the shortfall surfaces as a throughput violation).
    sc.candidates.clear();
    for (int c = 0; c < n; ++c) {
      if (mapping.coreBusy(c)) continue;
      if (context.observedFmax(c) >= t.minFrequency)
        sc.candidates.push_back(c);
    }
    if (sc.candidates.empty()) {
      for (int c = 0; c < n; ++c)
        if (!mapping.coreBusy(c)) sc.candidates.push_back(c);
    }
    HAYAT_REQUIRE(!sc.candidates.empty(), "no idle core left");
    const int feasible = static_cast<int>(sc.candidates.size());
    candidatesFeasibleTotal += static_cast<std::uint64_t>(feasible);

    // --- Spatial pruning (§3.11, opt-in). ---
    // Keep only the pruneRadius feasible cores with the strongest kernel
    // influence on the site the previous commit perturbed; the first
    // placement of a round has no such site and is never pruned.  The
    // kept set is the first R feasible cores in influence order, so it
    // is never empty and is nested in R (monotonicity, pinned by
    // tests/test_properties.cpp).  Ascending core order is preserved so
    // the downstream evaluation is order-identical to an exact sweep
    // over the same set.
    if (pruneActive && lastCommitted >= 0 &&
        feasible > config_.pruneRadius) {
      const std::uint64_t stamp = ++pruneStamp_;
      for (int cand : sc.candidates)
        sc.memberStamp[static_cast<std::size_t>(cand)] = stamp;
      int kept = 0;
      for (int i = 0; i < n && kept < config_.pruneRadius; ++i) {
        const int c = sc.influenceOrder[static_cast<std::size_t>(i)];
        if (sc.memberStamp[static_cast<std::size_t>(c)] == stamp) {
          sc.keepStamp[static_cast<std::size_t>(c)] = stamp;
          ++kept;
        }
      }
      std::size_t w = 0;
      for (int cand : sc.candidates)
        if (sc.keepStamp[static_cast<std::size_t>(cand)] == stamp)
          sc.candidates[w++] = cand;
      sc.candidates.resize(w);
    }
    candidatesPrunedTotal +=
        static_cast<std::uint64_t>(feasible) - sc.candidates.size();

    // --- Evaluate candidates (Algorithm 1 lines 5-20). ---
    // Two passes: the thermal what-if and Tsafe guard per candidate
    // first, then one batched health estimate over the survivors so
    // their inverse solves interleave (AgingTable::advanceDelayFactorMany).
    // Candidates touch no shared floating-point state, so reordering
    // their health estimates after all predictions leaves every result
    // bitwise-unchanged.
    std::vector<HayatCandidate>& s = sc.evaluated;
    s.clear();
    sc.survivorCores.clear();
    sc.survivorTemp.clear();
    sc.rejectCores.clear();
    sc.rejectDelta.clear();
    sc.rejectFloor.clear();
    const double* baseTemps = sc.baseline.temperatures.data();
    const auto hotIdx =
        static_cast<std::size_t>(sc.baseline.temperatureMaxIndex);
    for (int cand : sc.candidates) {
      const Hertz freq = operatingFrequency(context, cand, t.minFrequency);
      const Watts addedPower =
          t.averagePower * (freq / context.nominalFrequency);

      // Lines 9-13: the Tsafe guard, evaluated at the thread's
      // *worst-case phase power* (the paper's estimator supports
      // worst-case settings, Section IV-C): an average-power check would
      // admit placements whose phase peaks trip the DTM all epoch long.
      // evaluateCandidate decides the guard from O(1) bounds in the
      // common case and returns the closed-form average-power fields —
      // bitwise what predictCandidateStats would produce.
      const Watts peakPower =
          std::max(t.peakPower, t.averagePower) *
          (freq / context.nominalFrequency);
      const ThermalPredictor::CandidateDecision decision =
          predictor.evaluateCandidate(sc.baseline, cand, addedPower,
                                      peakPower, context.tsafe);
      if (!decision.admitted) {  // line 12-13
        // Stash the already-computed average-power delta and an O(1)
        // peak floor (the candidate's own and hot-spot terms of the
        // walk) in case every candidate trips Tsafe and the fallback
        // scan needs this round's rejects.
        const double* kcol = predictor.kernelColumn(cand);
        sc.rejectCores.push_back(cand);
        sc.rejectDelta.push_back(decision.deltaNext);
        sc.rejectFloor.push_back(
            std::max(decision.candidateNext,
                     baseTemps[hotIdx] + kcol[hotIdx] * decision.deltaNext));
        continue;
      }

      HayatCandidate record;
      record.core = cand;
      record.candidateNextHealth = 0.0;  // filled by the batched pass
      record.averageNextTemperature = decision.sumNext / n;
      record.weight = 0.0;
      s.push_back(record);
      sc.survivorCores.push_back(cand);
      sc.survivorTemp.push_back(decision.candidateNext);
    }

    // Lines 15-23 lazily: aging is monotone (H_next <= H_now, the aging
    // table's advance never lowers the delay factor), so with beta >= 0
    // `weightOf(slack, 1, ...)` bounds a survivor's weight from above.
    // Survivors are examined in descending bound order and evaluation
    // stops once every remaining bound is strictly below the best exact
    // weight — no later survivor can beat it, and a bound *equal* to the
    // best weight is still examined because the cooler-average tie-break
    // could prefer it.  Health lookups run in kHealthChunk batches so
    // the inverse solves keep interleaving; chunking and order leave
    // every estimate bitwise-unchanged (nextHealthMany is element-wise).
    const int survivors = static_cast<int>(sc.survivorCores.size());
    const double betaNow = context.elapsedYears >= config_.lateAgingOnset
                               ? config_.lateBeta
                               : config_.earlyBeta;
    const double ubRatio = betaNow >= 0.0 ? 1.0 : 0.0;
    for (int i = 0; i < survivors; ++i) {
      const int cand = sc.survivorCores[static_cast<std::size_t>(i)];
      const double slackGHz =
          (context.observedFmax(cand) - t.minFrequency) / 1e9;
      sc.healthUb[static_cast<std::size_t>(i)] =
          weightOf(slackGHz, ubRatio, context.elapsedYears,
                   context.observedWearOf(cand));
      sc.healthOrder[static_cast<std::size_t>(i)] = i;
    }
    std::sort(sc.healthOrder.begin(),
              sc.healthOrder.begin() + survivors, [&sc](int a, int b) {
                const double ua = sc.healthUb[static_cast<std::size_t>(a)];
                const double ub = sc.healthUb[static_cast<std::size_t>(b)];
                if (ua != ub) return ua > ub;
                return a < b;
              });
    int bestIdx = -1;
    double bestWeight = 0.0;
    double bestAvgT = 0.0;
    int next = 0;
    while (next < survivors) {
      if (bestIdx >= 0 &&
          sc.healthUb[static_cast<std::size_t>(
              sc.healthOrder[static_cast<std::size_t>(next)])] < bestWeight)
        break;
      const int chunk = std::min(kHealthChunk, survivors - next);
      int chunkCores[kHealthChunk];
      double chunkTemp[kHealthChunk];
      double chunkHealth[kHealthChunk];
      for (int j = 0; j < chunk; ++j) {
        const auto idx = static_cast<std::size_t>(
            sc.healthOrder[static_cast<std::size_t>(next + j)]);
        chunkCores[j] = sc.survivorCores[idx];
        chunkTemp[j] = sc.survivorTemp[idx];
      }
      sc.snapshot.nextHealthMany(chunkCores, chunkTemp, t.averageDuty,
                                 context.epochYears, chunk, chunkHealth);
      for (int j = 0; j < chunk; ++j) {
        const int idx = sc.healthOrder[static_cast<std::size_t>(next + j)];
        HayatCandidate& record = s[static_cast<std::size_t>(idx)];
        const int cand = record.core;
        const double hNext = chunkHealth[j];
        const double hNow = sc.snapshot.currentHealth(cand);
        record.candidateNextHealth = hNext;
        const double slackGHz =
            (context.observedFmax(cand) - t.minFrequency) / 1e9;
        record.weight =
            weightOf(slackGHz, hNext / hNow, context.elapsedYears,
                     context.observedWearOf(cand));
        // Lines 22-23 folded in: best weight first, cooler average as
        // the tie-break, earlier bound order on exact ties.
        if (bestIdx < 0 || record.weight > bestWeight ||
            (record.weight == bestWeight &&
             record.averageNextTemperature < bestAvgT)) {
          bestIdx = idx;
          bestWeight = record.weight;
          bestAvgT = record.averageNextTemperature;
        }
      }
      next += chunk;
    }

    if (s.empty()) {
      // Every candidate trips Tsafe: take the thermally least-bad idle
      // core — the exact argmin of the average-power what-if peak (ties:
      // lowest core); the DTM will police the consequence.  (The paper's
      // algorithm cannot leave a runnable thread unmapped.)  The rejects
      // stash holds every candidate of the round with the delta and the
      // O(1) peak floor the main sweep already computed; scanning in
      // ascending floor order means that once the floor exceeds the
      // incumbent minimum, no later candidate can beat or tie it, so the
      // saturated-chip regime — where this branch runs for most
      // placements — settles after a handful of full peak walks and no
      // repeated leakage evaluations.
      const int fcount = static_cast<int>(sc.rejectCores.size());
      for (int i = 0; i < fcount; ++i)
        sc.rejectOrder[static_cast<std::size_t>(i)] = i;
      std::sort(sc.rejectOrder.begin(), sc.rejectOrder.begin() + fcount,
                [&sc](int a, int b) {
                  const double ka =
                      sc.rejectFloor[static_cast<std::size_t>(a)];
                  const double kb =
                      sc.rejectFloor[static_cast<std::size_t>(b)];
                  if (ka != kb) return ka < kb;
                  return a < b;
                });
      int coolest = -1;
      double bestT = std::numeric_limits<double>::infinity();
      for (int oi = 0; oi < fcount; ++oi) {
        const auto idx = static_cast<std::size_t>(
            sc.rejectOrder[static_cast<std::size_t>(oi)]);
        if (coolest >= 0 && sc.rejectFloor[idx] > bestT) break;
        const int cand = sc.rejectCores[idx];
        // Bounded variant of the main sweep's fused pass at average
        // power for both levels: the exact max_i of the average-power
        // what-if vector when it is at or below the incumbent, +inf (no
        // update possible) when a prefix of the walk already exceeds it.
        const double tMax = predictor.candidateMaxPeakBelow(
            sc.baseline, cand, sc.rejectDelta[idx], bestT);
        if (tMax < bestT) {
          bestT = tMax;
          coolest = cand;
        } else if (tMax == bestT && cand < coolest) {
          coolest = cand;  // the core-order scan would have found it first
        }
      }
      s.push_back(HayatCandidate{coolest, 0.0, 0.0, bestT});
      bestIdx = 0;
    }

    const HayatCandidate& winner = s[static_cast<std::size_t>(bestIdx)];
    const int chosen = winner.core;
    const Hertz freq = operatingFrequency(context, chosen, t.minFrequency);
    mapping.assign(t.ref, chosen, freq, t.minFrequency);

    // Fold the placement into the predictor baseline as a rank-1 delta:
    // the committed profile is bitwise the what-if the sort just scored
    // (§3.11), and subsequent threads see it — O(n) instead of the
    // O(n²·sweeps) full refresh.
    predictor.commitPlacement(sc.baseline, chosen,
                              t.averagePower *
                                  (freq / context.nominalFrequency));
    if (++commitsSinceAnchor >= kBaselineAnchorInterval) {
      // Periodic full re-anchor: the folds' neglected leakage
      // re-coupling must not compound unbounded across a long round.
      predictor.refreshBaseline(sc.baseline, sc.predictScratch);
      commitsSinceAnchor = 0;
    }
    lastCommitted = chosen;
    if (pruneActive)
      predictor.influenceOrder(chosen, sc.influenceOrder.data());
    lastDecisions_.push_back(HayatPlacementDecision{
        chosen, winner.weight, feasible,
        static_cast<int>(sc.candidates.size())});
  }

  const std::uint64_t loopAllocs = heapAllocationCount() - allocsBefore;
  placementLoopAllocs.fetch_add(loopAllocs, std::memory_order_relaxed);
  if (telemetry::enabled() && loopAllocs > 0) {
    static telemetry::Counter& counter =
        telemetry::Registry::global().counter(
            "hayat_policy_placement_allocs");
    counter.add(loopAllocs);
  }
  if (telemetry::enabled()) {
    static telemetry::Counter& feasibleCounter =
        telemetry::Registry::global().counter(
            "hayat_policy_candidates_total");
    static telemetry::Counter& prunedCounter =
        telemetry::Registry::global().counter(
            "hayat_policy_candidates_pruned_total");
    feasibleCounter.add(candidatesFeasibleTotal);
    if (candidatesPrunedTotal > 0) prunedCounter.add(candidatesPrunedTotal);
  }
}

}  // namespace hayat
