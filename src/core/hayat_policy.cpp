#include "core/hayat_policy.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/alloc_counter.hpp"
#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace hayat {

namespace {
std::atomic<std::uint64_t> placementLoopAllocs{0};
}  // namespace

std::uint64_t hayatPlacementLoopAllocs() {
  return placementLoopAllocs.load();
}

HayatPolicy::HayatPolicy(HayatConfig config) : config_(config) {
  HAYAT_REQUIRE(config.wmax > 0.0, "wmax must be positive");
  HAYAT_REQUIRE(config.earlyAlphaGHz > 0.0 && config.lateAlphaGHz > 0.0,
                "alpha coefficients must be positive");
  HAYAT_REQUIRE(config.earlyBeta >= 0.0 && config.lateBeta >= 0.0,
                "beta coefficients must be non-negative");
  HAYAT_REQUIRE(config.lateAgingOnset >= 0.0, "negative late-aging onset");
}

double HayatPolicy::weightOf(double slackGHz, double healthRatio,
                             Years elapsed, double wear) const {
  const bool late = elapsed >= config_.lateAgingOnset;
  const double alpha = late ? config_.lateAlphaGHz : config_.earlyAlphaGHz;
  const double beta = late ? config_.lateBeta : config_.earlyBeta;
  // Frequency-matching term, capped at wmax ("limited to a certain
  // maximum weight"); zero/negative slack is a perfect match -> wmax.
  const double matching =
      slackGHz <= 0.0 ? config_.wmax
                      : std::min(config_.wmax, alpha / slackGHz);
  return matching + beta * healthRatio - config_.wearGamma * wear;
}

Mapping HayatPolicy::map(const PolicyContext& context) {
  const telemetry::Span mapSpan("policy.hayat.map");
  if (telemetry::enabled()) {
    static telemetry::Counter& decisions =
        telemetry::Registry::global().counter(
            "hayat_policy_hayat_decisions_total");
    decisions.add();
  }
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  const int n = context.chip->coreCount();
  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  const std::vector<int> parallelism =
      chooseParallelism(*context.mix, maxOn);

  Mapping mapping(n);
  placeThreads(context, runnableThreads(*context.mix, parallelism), mapping);
  return mapping;
}

Mapping HayatPolicy::placeApplication(const PolicyContext& context,
                                      const Mapping& existing, int appIndex,
                                      int activeThreads) {
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  HAYAT_REQUIRE(appIndex >= 0 &&
                    appIndex < static_cast<int>(context.mix->applications.size()),
                "application index out of range");
  const Application& app =
      context.mix->applications[static_cast<std::size_t>(appIndex)];
  const int k = activeThreads > 0 ? activeThreads : app.maxThreads();
  HAYAT_REQUIRE(k >= app.minThreads() && k <= app.maxThreads(),
                "active thread count outside the malleable range");

  const int n = context.chip->coreCount();
  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  HAYAT_REQUIRE(existing.assignedCount() + k <= maxOn,
                "arriving application would violate the dark-silicon "
                "budget");

  std::vector<RunnableThread> arriving;
  for (int t = 0; t < k; ++t) {
    RunnableThread rt;
    rt.ref = {appIndex, t};
    rt.minFrequency = app.minFrequencyAt(t, k);
    rt.averagePower = app.thread(t).averagePower();
    rt.peakPower = app.thread(t).peakPower();
    rt.averageDuty = app.thread(t).averageDuty();
    arriving.push_back(rt);
  }

  Mapping mapping = existing;
  placeThreads(context, std::move(arriving), mapping);
  return mapping;
}

void HayatPolicy::placeThreads(const PolicyContext& context,
                               std::vector<RunnableThread> threads,
                               Mapping& mapping) {
  const Chip& chip = *context.chip;
  const int n = chip.coreCount();

  // Work-list order: most demanding threads first — they have the fewest
  // feasible cores, so they choose before the pool thins out.
  std::sort(threads.begin(), threads.end(),
            [](const RunnableThread& a, const RunnableThread& b) {
              return a.minFrequency > b.minFrequency;
            });

  const ThermalPredictor predictor(*context.thermal, *context.leakage,
                                   config_.leakageIterations);
  const HealthEstimator estimator(chip.agingTable(), config_.dutyPolicy);

  // Pre-warm every buffer the placement loop touches so the loop itself
  // is allocation-free in steady state (the DESIGN.md §3.10 contract; the
  // delta is tracked in hayatPlacementLoopAllocs).  The baseline reflects
  // whatever is already running in the mapping; the aging snapshot
  // captures the chip's current delay factors, which cannot change while
  // the policy deliberates, so every candidate reads from the copy.
  Scratch& sc = scratch_;
  mapping.averageDynamicPowerInto(*context.mix, context.nominalFrequency,
                                  sc.baseline.dynamicPower);
  sc.baseline.poweredOn.assign(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i)
    sc.baseline.poweredOn[static_cast<std::size_t>(i)] = mapping.coreBusy(i);
  predictor.refreshBaseline(sc.baseline, sc.predictScratch);
  sc.snapshot.capture(estimator, context.health());
  sc.candidates.reserve(static_cast<std::size_t>(n));
  sc.evaluated.reserve(static_cast<std::size_t>(n));
  sc.survivorCores.reserve(static_cast<std::size_t>(n));
  sc.survivorTemp.reserve(static_cast<std::size_t>(n));
  sc.survivorHealth.resize(static_cast<std::size_t>(n));
  const std::uint64_t allocsBefore = heapAllocationCount();

  for (const RunnableThread& t : threads) {
    // Candidate cores: idle and fast enough at their current age; if the
    // requirement is infeasible everywhere, fall back to all idle cores
    // (best effort — the shortfall surfaces as a throughput violation).
    sc.candidates.clear();
    for (int c = 0; c < n; ++c) {
      if (mapping.coreBusy(c)) continue;
      if (context.observedFmax(c) >= t.minFrequency)
        sc.candidates.push_back(c);
    }
    if (sc.candidates.empty()) {
      for (int c = 0; c < n; ++c)
        if (!mapping.coreBusy(c)) sc.candidates.push_back(c);
    }
    HAYAT_REQUIRE(!sc.candidates.empty(), "no idle core left");

    // --- Evaluate candidates (Algorithm 1 lines 5-20). ---
    // Two passes: the thermal what-if and Tsafe guard per candidate
    // first, then one batched health estimate over the survivors so
    // their inverse solves interleave (AgingTable::advanceDelayFactorMany).
    // Candidates touch no shared floating-point state, so reordering
    // their health estimates after all predictions leaves every result
    // bitwise-unchanged.
    std::vector<HayatCandidate>& s = sc.evaluated;
    s.clear();
    sc.survivorCores.clear();
    sc.survivorTemp.clear();
    for (int cand : sc.candidates) {
      const Hertz freq = operatingFrequency(context, cand, t.minFrequency);
      const Watts addedPower =
          t.averagePower * (freq / context.nominalFrequency);

      // Lines 9-13: Tmax bookkeeping and the Tsafe guard.  The guard is
      // evaluated at the thread's *worst-case phase power* (the paper's
      // estimator supports worst-case settings, Section IV-C): an
      // average-power check would admit placements whose phase peaks trip
      // the DTM all epoch long.  One fused pass produces the average-
      // power sum, the peak-power max, and the candidate's own next
      // temperature without materializing either predicted vector.
      const Watts peakPower =
          std::max(t.peakPower, t.averagePower) *
          (freq / context.nominalFrequency);
      const ThermalPredictor::CandidateStats stats =
          predictor.predictCandidateStats(sc.baseline, cand, addedPower,
                                          peakPower);
      if (stats.maxPeak >= context.tsafe) continue;  // line 12-13

      HayatCandidate record;
      record.core = cand;
      record.candidateNextHealth = 0.0;  // filled by the batched pass
      record.averageNextTemperature = stats.sumNext / n;
      record.maxNextTemperature = stats.maxPeak;
      record.weight = 0.0;
      s.push_back(record);
      sc.survivorCores.push_back(cand);
      sc.survivorTemp.push_back(stats.candidateNext);
    }

    // Line 15 for every survivor at once: estimated end-of-epoch health
    // from the per-epoch aging snapshot (bitwise-identical to querying
    // the estimator per candidate against the live health map).
    const int survivors = static_cast<int>(sc.survivorCores.size());
    sc.snapshot.nextHealthMany(sc.survivorCores.data(),
                               sc.survivorTemp.data(), t.averageDuty,
                               context.epochYears, survivors,
                               sc.survivorHealth.data());
    for (int i = 0; i < survivors; ++i) {
      HayatCandidate& record = s[static_cast<std::size_t>(i)];
      const int cand = record.core;
      const double hNext = sc.survivorHealth[static_cast<std::size_t>(i)];
      const double hNow = sc.snapshot.currentHealth(cand);
      record.candidateNextHealth = hNext;
      const double slackGHz =
          (context.observedFmax(cand) - t.minFrequency) / 1e9;
      record.weight =
          weightOf(slackGHz, hNext / hNow, context.elapsedYears,
                   context.observedWearOf(cand));
    }

    if (s.empty()) {
      // Every candidate trips Tsafe: take the thermally least-bad idle
      // core; the DTM will police the consequence.  (The paper's
      // algorithm cannot leave a runnable thread unmapped.)
      int coolest = sc.candidates.front();
      double bestT = 1e300;
      for (int cand : sc.candidates) {
        predictor.predictWithCandidateInto(
            sc.baseline, cand,
            t.averagePower *
                (operatingFrequency(context, cand, t.minFrequency) /
                 context.nominalFrequency),
            sc.tNext);
        const double tMax =
            *std::max_element(sc.tNext.begin(), sc.tNext.end());
        if (tMax < bestT) {
          bestT = tMax;
          coolest = cand;
        }
      }
      s.push_back(HayatCandidate{coolest, 0.0, 0.0, bestT});
    }

    // Lines 22-23: sort by weight (ties: cooler average first) and take
    // the front.
    std::sort(s.begin(), s.end(),
              [](const HayatCandidate& a, const HayatCandidate& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.averageNextTemperature < b.averageNextTemperature;
              });
    const int chosen = s.front().core;
    const Hertz freq = operatingFrequency(context, chosen, t.minFrequency);
    mapping.assign(t.ref, chosen, freq, t.minFrequency);

    // Fold the placement into the predictor baseline (incremental
    // superposition) so subsequent threads see it.
    sc.baseline.dynamicPower[static_cast<std::size_t>(chosen)] =
        t.averagePower * (freq / context.nominalFrequency);
    sc.baseline.poweredOn[static_cast<std::size_t>(chosen)] = true;
    predictor.refreshBaseline(sc.baseline, sc.predictScratch);
  }

  const std::uint64_t loopAllocs = heapAllocationCount() - allocsBefore;
  placementLoopAllocs.fetch_add(loopAllocs, std::memory_order_relaxed);
  if (telemetry::enabled() && loopAllocs > 0) {
    static telemetry::Counter& counter =
        telemetry::Registry::global().counter(
            "hayat_policy_placement_allocs");
    counter.add(loopAllocs);
  }
}

}  // namespace hayat
