#include "core/hayat_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace hayat {

HayatPolicy::HayatPolicy(HayatConfig config) : config_(config) {
  HAYAT_REQUIRE(config.wmax > 0.0, "wmax must be positive");
  HAYAT_REQUIRE(config.earlyAlphaGHz > 0.0 && config.lateAlphaGHz > 0.0,
                "alpha coefficients must be positive");
  HAYAT_REQUIRE(config.earlyBeta >= 0.0 && config.lateBeta >= 0.0,
                "beta coefficients must be non-negative");
  HAYAT_REQUIRE(config.lateAgingOnset >= 0.0, "negative late-aging onset");
}

double HayatPolicy::weightOf(double slackGHz, double healthRatio,
                             Years elapsed, double wear) const {
  const bool late = elapsed >= config_.lateAgingOnset;
  const double alpha = late ? config_.lateAlphaGHz : config_.earlyAlphaGHz;
  const double beta = late ? config_.lateBeta : config_.earlyBeta;
  // Frequency-matching term, capped at wmax ("limited to a certain
  // maximum weight"); zero/negative slack is a perfect match -> wmax.
  const double matching =
      slackGHz <= 0.0 ? config_.wmax
                      : std::min(config_.wmax, alpha / slackGHz);
  return matching + beta * healthRatio - config_.wearGamma * wear;
}

Mapping HayatPolicy::map(const PolicyContext& context) {
  const telemetry::Span mapSpan("policy.hayat.map");
  if (telemetry::enabled()) {
    static telemetry::Counter& decisions =
        telemetry::Registry::global().counter(
            "hayat_policy_hayat_decisions_total");
    decisions.add();
  }
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  const int n = context.chip->coreCount();
  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  const std::vector<int> parallelism =
      chooseParallelism(*context.mix, maxOn);

  Mapping mapping(n);
  placeThreads(context, runnableThreads(*context.mix, parallelism), mapping);
  return mapping;
}

Mapping HayatPolicy::placeApplication(const PolicyContext& context,
                                      const Mapping& existing, int appIndex,
                                      int activeThreads) {
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  HAYAT_REQUIRE(appIndex >= 0 &&
                    appIndex < static_cast<int>(context.mix->applications.size()),
                "application index out of range");
  const Application& app =
      context.mix->applications[static_cast<std::size_t>(appIndex)];
  const int k = activeThreads > 0 ? activeThreads : app.maxThreads();
  HAYAT_REQUIRE(k >= app.minThreads() && k <= app.maxThreads(),
                "active thread count outside the malleable range");

  const int n = context.chip->coreCount();
  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  HAYAT_REQUIRE(existing.assignedCount() + k <= maxOn,
                "arriving application would violate the dark-silicon "
                "budget");

  std::vector<RunnableThread> arriving;
  for (int t = 0; t < k; ++t) {
    RunnableThread rt;
    rt.ref = {appIndex, t};
    rt.minFrequency = app.minFrequencyAt(t, k);
    rt.averagePower = app.thread(t).averagePower();
    rt.peakPower = app.thread(t).peakPower();
    rt.averageDuty = app.thread(t).averageDuty();
    arriving.push_back(rt);
  }

  Mapping mapping = existing;
  placeThreads(context, std::move(arriving), mapping);
  return mapping;
}

void HayatPolicy::placeThreads(const PolicyContext& context,
                               std::vector<RunnableThread> threads,
                               Mapping& mapping) const {
  const Chip& chip = *context.chip;
  const int n = chip.coreCount();

  // Work-list order: most demanding threads first — they have the fewest
  // feasible cores, so they choose before the pool thins out.
  std::sort(threads.begin(), threads.end(),
            [](const RunnableThread& a, const RunnableThread& b) {
              return a.minFrequency > b.minFrequency;
            });

  const ThermalPredictor predictor(*context.thermal, *context.leakage,
                                   config_.leakageIterations);
  const HealthEstimator estimator(chip.agingTable(), config_.dutyPolicy);

  // Baseline reflects whatever is already running in the mapping.
  Vector dynPower =
      mapping.averageDynamicPower(*context.mix, context.nominalFrequency);
  std::vector<bool> on(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i)
    on[static_cast<std::size_t>(i)] = mapping.coreBusy(i);
  ThermalPredictor::Baseline baseline = predictor.makeBaseline(dynPower, on);

  for (const RunnableThread& t : threads) {
    // Candidate cores: idle and fast enough at their current age; if the
    // requirement is infeasible everywhere, fall back to all idle cores
    // (best effort — the shortfall surfaces as a throughput violation).
    std::vector<int> candidates;
    for (int c = 0; c < n; ++c) {
      if (mapping.coreBusy(c)) continue;
      if (context.observedFmax(c) >= t.minFrequency) candidates.push_back(c);
    }
    if (candidates.empty()) {
      for (int c = 0; c < n; ++c)
        if (!mapping.coreBusy(c)) candidates.push_back(c);
    }
    HAYAT_REQUIRE(!candidates.empty(), "no idle core left");

    // --- Evaluate candidates (Algorithm 1 lines 5-20). ---
    std::vector<HayatCandidate> s;
    s.reserve(candidates.size());
    for (int cand : candidates) {
      const Hertz freq = operatingFrequency(context, cand, t.minFrequency);
      const Watts addedPower =
          t.averagePower * (freq / context.nominalFrequency);
      const Vector tNext =
          predictor.predictWithCandidate(baseline, cand, addedPower);

      // Lines 9-13: Tmax bookkeeping and the Tsafe guard.  The guard is
      // evaluated at the thread's *worst-case phase power* (the paper's
      // estimator supports worst-case settings, Section IV-C): an
      // average-power check would admit placements whose phase peaks trip
      // the DTM all epoch long.
      const Watts peakPower =
          std::max(t.peakPower, t.averagePower) *
          (freq / context.nominalFrequency);
      const Vector tPeak =
          predictor.predictWithCandidate(baseline, cand, peakPower);
      double tMax = 0.0;
      double tSum = 0.0;
      for (double temp : tNext) tSum += temp;
      for (double temp : tPeak) tMax = std::max(tMax, temp);
      if (tMax >= context.tsafe) continue;  // line 12-13

      // Line 15: candidate's estimated end-of-epoch health.
      const auto cs = static_cast<std::size_t>(cand);
      const double hNext = estimator.estimateNextHealth(
          context.health().state(cand), tNext[cs], t.averageDuty,
          context.epochYears);
      const double hNow = context.health().health(cand);

      HayatCandidate record;
      record.core = cand;
      record.candidateNextHealth = hNext;
      record.averageNextTemperature = tSum / n;
      record.maxNextTemperature = tMax;
      const double slackGHz =
          (context.observedFmax(cand) - t.minFrequency) / 1e9;
      record.weight =
          weightOf(slackGHz, hNext / hNow, context.elapsedYears,
                   context.observedWearOf(cand));
      s.push_back(record);
    }

    if (s.empty()) {
      // Every candidate trips Tsafe: take the thermally least-bad idle
      // core; the DTM will police the consequence.  (The paper's
      // algorithm cannot leave a runnable thread unmapped.)
      int coolest = candidates.front();
      double bestT = 1e300;
      for (int cand : candidates) {
        const Vector tNext = predictor.predictWithCandidate(
            baseline, cand,
            t.averagePower *
                (operatingFrequency(context, cand, t.minFrequency) /
                 context.nominalFrequency));
        const double tMax = *std::max_element(tNext.begin(), tNext.end());
        if (tMax < bestT) {
          bestT = tMax;
          coolest = cand;
        }
      }
      s.push_back(HayatCandidate{coolest, 0.0, 0.0, bestT});
    }

    // Lines 22-23: sort by weight (ties: cooler average first) and take
    // the front.
    std::sort(s.begin(), s.end(),
              [](const HayatCandidate& a, const HayatCandidate& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.averageNextTemperature < b.averageNextTemperature;
              });
    const int chosen = s.front().core;
    const Hertz freq = operatingFrequency(context, chosen, t.minFrequency);
    mapping.assign(t.ref, chosen, freq, t.minFrequency);

    // Fold the placement into the predictor baseline (incremental
    // superposition) so subsequent threads see it.
    dynPower[static_cast<std::size_t>(chosen)] =
        t.averagePower * (freq / context.nominalFrequency);
    on[static_cast<std::size_t>(chosen)] = true;
    baseline = predictor.makeBaseline(dynPower, on);
  }
}

}  // namespace hayat
