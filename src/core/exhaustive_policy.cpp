#include "core/exhaustive_policy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "runtime/thermal_predictor.hpp"

namespace hayat {

namespace {

/// Shared scoring: predicted temperatures + per-core next-health sum.
double scoreMapping(const PolicyContext& ctx, const Mapping& mapping,
                    const ThermalPredictor& predictor,
                    const HealthEstimator& estimator) {
  const Chip& chip = *ctx.chip;
  const int n = chip.coreCount();
  const Vector dyn = mapping.averageDynamicPower(*ctx.mix,
                                                 ctx.nominalFrequency);
  std::vector<bool> on(static_cast<std::size_t>(n));
  std::vector<double> duty(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    on[s] = mapping.coreBusy(i);
    if (const auto& slot = mapping.onCore(i); slot.has_value()) {
      duty[s] = ctx.mix->applications[static_cast<std::size_t>(slot->ref.app)]
                    .thread(slot->ref.thread)
                    .averageDuty();
    }
  }
  const Vector temps = predictor.predict(dyn, on);
  for (double t : temps)
    if (t >= ctx.tsafe) return -1.0;  // Eq. (4) violated

  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    sum += estimator.estimateNextHealth(ctx.health().state(i), temps[s],
                                        duty[s], ctx.epochYears);
  }
  return sum;
}

}  // namespace

ExhaustivePolicy::ExhaustivePolicy(ExhaustiveConfig config)
    : config_(config) {
  HAYAT_REQUIRE(config.maxAssignments >= 1, "assignment cap must be >= 1");
}

std::uint64_t ExhaustivePolicy::assignmentCount(int cores, int threads) {
  HAYAT_REQUIRE(cores >= 0 && threads >= 0, "negative sizes");
  if (threads > cores) return 0;
  std::uint64_t count = 1;
  for (int t = 0; t < threads; ++t) {
    const auto factor = static_cast<std::uint64_t>(cores - t);
    // Saturating multiply keeps absurd instances from overflowing.
    if (count > UINT64_MAX / factor) return UINT64_MAX;
    count *= factor;
  }
  return count;
}

double ExhaustivePolicy::objective(const PolicyContext& ctx,
                                   const Mapping& mapping) {
  HAYAT_REQUIRE(ctx.chip && ctx.mix && ctx.thermal && ctx.leakage,
                "incomplete policy context");
  const ThermalPredictor predictor(*ctx.thermal, *ctx.leakage);
  const HealthEstimator estimator(ctx.chip->agingTable(), DutyPolicy::Known);
  return scoreMapping(ctx, mapping, predictor, estimator);
}

Mapping ExhaustivePolicy::map(const PolicyContext& ctx) {
  HAYAT_REQUIRE(ctx.chip && ctx.mix && ctx.thermal && ctx.leakage,
                "incomplete policy context");
  const Chip& chip = *ctx.chip;
  const int n = chip.coreCount();
  const int budget = std::max(
      1, static_cast<int>(n * (1.0 - ctx.minDarkFraction) + 1e-9));
  const std::vector<int> parallelism = chooseParallelism(*ctx.mix, budget);
  const std::vector<RunnableThread> threads =
      runnableThreads(*ctx.mix, parallelism);
  const int t = static_cast<int>(threads.size());

  const std::uint64_t total = assignmentCount(n, t);
  HAYAT_REQUIRE(total > 0, "more threads than cores");
  HAYAT_REQUIRE(total <= config_.maxAssignments,
                "instance too large for exhaustive enumeration — this is "
                "exactly the Section IV-A infeasibility argument");

  const ThermalPredictor predictor(*ctx.thermal, *ctx.leakage);
  const HealthEstimator estimator(chip.agingTable(), config_.dutyPolicy);

  // Depth-first enumeration of injective thread->core assignments.
  Mapping best(n);
  double bestScore = -2.0;
  std::vector<int> assignment(static_cast<std::size_t>(t), -1);
  std::vector<bool> used(static_cast<std::size_t>(n), false);

  // Recursive lambda via explicit stack-free recursion helper.
  auto place = [&](auto&& self, int depth) -> void {
    if (depth == t) {
      Mapping candidate(n);
      for (int k = 0; k < t; ++k) {
        const RunnableThread& th = threads[static_cast<std::size_t>(k)];
        const int core = assignment[static_cast<std::size_t>(k)];
        candidate.assign(th.ref, core,
                         operatingFrequency(ctx, core, th.minFrequency),
                         th.minFrequency);
      }
      const double score =
          scoreMapping(ctx, candidate, predictor, estimator);
      if (score > bestScore) {
        bestScore = score;
        best = candidate;
      }
      return;
    }
    for (int core = 0; core < n; ++core) {
      if (used[static_cast<std::size_t>(core)]) continue;
      used[static_cast<std::size_t>(core)] = true;
      assignment[static_cast<std::size_t>(depth)] = core;
      self(self, depth + 1);
      used[static_cast<std::size_t>(core)] = false;
    }
  };
  place(place, 0);

  HAYAT_REQUIRE(best.assignedCount() == t,
                "exhaustive search found no assignment");
  return best;
}

}  // namespace hayat
