#include "core/exhaustive_policy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "runtime/thermal_predictor.hpp"

namespace hayat {

namespace {

/// Buffers reused across candidate scorings so the enumeration loop does
/// not allocate per assignment.
struct ScoreScratch {
  Vector dyn;
  std::vector<bool> on;
  std::vector<double> duty;
  Vector temps;
  Vector predictScratch;
};

/// Shared scoring: predicted temperatures + per-core next-health sum,
/// served from the per-map() aging snapshot (bitwise-identical to
/// querying the estimator against the live health map).
double scoreMapping(const PolicyContext& ctx, const Mapping& mapping,
                    const ThermalPredictor& predictor,
                    const AgingSnapshot& snapshot, ScoreScratch& scratch) {
  const Chip& chip = *ctx.chip;
  const int n = chip.coreCount();
  mapping.averageDynamicPowerInto(*ctx.mix, ctx.nominalFrequency,
                                  scratch.dyn);
  scratch.on.assign(static_cast<std::size_t>(n), false);
  scratch.duty.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    scratch.on[s] = mapping.coreBusy(i);
    if (const auto& slot = mapping.onCore(i); slot.has_value()) {
      scratch.duty[s] =
          ctx.mix->applications[static_cast<std::size_t>(slot->ref.app)]
              .thread(slot->ref.thread)
              .averageDuty();
    }
  }
  predictor.predictInto(scratch.dyn, scratch.on, scratch.temps,
                        scratch.predictScratch);
  for (double t : scratch.temps)
    if (t >= ctx.tsafe) return -1.0;  // Eq. (4) violated

  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    sum += snapshot.nextHealth(i, scratch.temps[s], scratch.duty[s],
                               ctx.epochYears);
  }
  return sum;
}

}  // namespace

ExhaustivePolicy::ExhaustivePolicy(ExhaustiveConfig config)
    : config_(config) {
  HAYAT_REQUIRE(config.maxAssignments >= 1, "assignment cap must be >= 1");
}

std::uint64_t ExhaustivePolicy::assignmentCount(int cores, int threads) {
  HAYAT_REQUIRE(cores >= 0 && threads >= 0, "negative sizes");
  if (threads > cores) return 0;
  std::uint64_t count = 1;
  for (int t = 0; t < threads; ++t) {
    const auto factor = static_cast<std::uint64_t>(cores - t);
    // Saturating multiply keeps absurd instances from overflowing.
    if (count > UINT64_MAX / factor) return UINT64_MAX;
    count *= factor;
  }
  return count;
}

double ExhaustivePolicy::objective(const PolicyContext& ctx,
                                   const Mapping& mapping) {
  HAYAT_REQUIRE(ctx.chip && ctx.mix && ctx.thermal && ctx.leakage,
                "incomplete policy context");
  const ThermalPredictor predictor(*ctx.thermal, *ctx.leakage);
  const HealthEstimator estimator(ctx.chip->agingTable(), DutyPolicy::Known);
  AgingSnapshot snapshot;
  snapshot.capture(estimator, ctx.health());
  ScoreScratch scratch;
  return scoreMapping(ctx, mapping, predictor, snapshot, scratch);
}

Mapping ExhaustivePolicy::map(const PolicyContext& ctx) {
  HAYAT_REQUIRE(ctx.chip && ctx.mix && ctx.thermal && ctx.leakage,
                "incomplete policy context");
  const Chip& chip = *ctx.chip;
  const int n = chip.coreCount();
  const int budget = std::max(
      1, static_cast<int>(n * (1.0 - ctx.minDarkFraction) + 1e-9));
  const std::vector<int> parallelism = chooseParallelism(*ctx.mix, budget);
  const std::vector<RunnableThread> threads =
      runnableThreads(*ctx.mix, parallelism);
  const int t = static_cast<int>(threads.size());

  const std::uint64_t total = assignmentCount(n, t);
  HAYAT_REQUIRE(total > 0, "more threads than cores");
  HAYAT_REQUIRE(total <= config_.maxAssignments,
                "instance too large for exhaustive enumeration — this is "
                "exactly the Section IV-A infeasibility argument");

  const ThermalPredictor predictor(*ctx.thermal, *ctx.leakage);
  const HealthEstimator estimator(chip.agingTable(), config_.dutyPolicy);
  // The chip's aging state is fixed for the whole enumeration: capture it
  // once and let every scored assignment read from the snapshot.
  AgingSnapshot snapshot;
  snapshot.capture(estimator, ctx.health());
  ScoreScratch scratch;

  // Depth-first enumeration of injective thread->core assignments.
  Mapping best(n);
  double bestScore = -2.0;
  std::vector<int> assignment(static_cast<std::size_t>(t), -1);
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  Mapping candidate(n);  // reused across leaves

  // Recursive lambda via explicit stack-free recursion helper.
  auto place = [&](auto&& self, int depth) -> void {
    if (depth == t) {
      for (int k = 0; k < t; ++k) {
        const RunnableThread& th = threads[static_cast<std::size_t>(k)];
        const int core = assignment[static_cast<std::size_t>(k)];
        candidate.assign(th.ref, core,
                         operatingFrequency(ctx, core, th.minFrequency),
                         th.minFrequency);
      }
      const double score =
          scoreMapping(ctx, candidate, predictor, snapshot, scratch);
      if (score > bestScore) {
        bestScore = score;
        best = candidate;
      }
      for (int k = 0; k < t; ++k)
        candidate.unassign(assignment[static_cast<std::size_t>(k)]);
      return;
    }
    for (int core = 0; core < n; ++core) {
      if (used[static_cast<std::size_t>(core)]) continue;
      used[static_cast<std::size_t>(core)] = true;
      assignment[static_cast<std::size_t>(depth)] = core;
      self(self, depth + 1);
      used[static_cast<std::size_t>(core)] = false;
    }
  };
  place(place, 0);

  HAYAT_REQUIRE(best.assignedCount() == t,
                "exhaustive search found no assignment");
  return best;
}

}  // namespace hayat
