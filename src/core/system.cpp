#include "core/system.hpp"

#include "common/error.hpp"

namespace hayat {

namespace {

ChipConfig chipConfigFrom(const SystemConfig& config) {
  ChipConfig cc;
  cc.floorplan = FloorPlan(config.population.coreGrid,
                           config.population.coreWidth,
                           config.population.coreHeight);
  cc.nbti = config.nbti;
  cc.agingTable = config.agingTable;
  cc.pathsPerCore = config.pathsPerCore;
  cc.elementsPerPath = config.elementsPerPath;
  return cc;
}

}  // namespace

System System::create(const SystemConfig& config, std::uint64_t populationSeed,
                      int index) {
  HAYAT_REQUIRE(index >= 0, "negative chip index");
  auto chips = generateChipPopulation(config.population, index + 1,
                                      populationSeed);
  const std::uint64_t mix =
      std::uint64_t{0x9E3779B97F4A7C15} * static_cast<std::uint64_t>(index + 1);
  return System(config, std::move(chips[static_cast<std::size_t>(index)]),
                populationSeed ^ mix);
}

System::System(const SystemConfig& config, VariationMap variation,
               std::uint64_t chipSeed)
    : config_(config), chipSeed_(chipSeed) {
  ChipConfig cc = chipConfigFrom(config);
  chip_ = std::make_unique<Chip>(cc, std::move(variation), chipSeed);

  ThermalConfig tc = config.thermal;
  tc.floorplan = cc.floorplan;
  thermal_ = std::make_unique<ThermalModel>(tc);

  LeakageConfig lc = config.leakage;
  leakage_ = std::make_unique<LeakageModel>(lc, chip_->variation());
}

void System::resetHealth() {
  // Health is the chip's only mutable state; variation, paths, aging
  // table, and the leakage model are deterministic and unchanged, so a
  // health-only reset is bitwise-equivalent to rebuilding everything.
  chip_->resetHealth();
}

}  // namespace hayat
