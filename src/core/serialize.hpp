// Persistence for run-time state and experiment outputs.
//
// A deployed Hayat system must survive reboots: the paper's health map is
// accumulated over *years*, so it has to be checkpointed (the aging
// sensors only measure present degradation; the map also carries the
// initial variation frequencies).  This module provides a small,
// versioned, line-oriented text format for health maps plus CSV export of
// lifetime results for external plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "aging/health.hpp"
#include "core/lifetime.hpp"

namespace hayat {

/// Writes a health map checkpoint (versioned text format).
void saveHealthMap(std::ostream& out, const HealthMap& map);

/// Reads a checkpoint written by saveHealthMap.  Throws hayat::Error on
/// format or version mismatches.
HealthMap loadHealthMap(std::istream& in);

/// Convenience: file-path overloads.
void saveHealthMapFile(const std::string& path, const HealthMap& map);
HealthMap loadHealthMapFile(const std::string& path);

/// Writes a LifetimeResult as CSV: one row per epoch with all recorded
/// metrics (header row included).
void writeLifetimeCsv(std::ostream& out, const LifetimeResult& result);

}  // namespace hayat
