// Utilization-aware (wear-leveling) allocation baseline.
//
// The classic lifetime-balancing heuristic the failure benches compare
// Hayat against: place work on the cores that have *consumed the least
// life* so far, so accumulated wear-out damage (and hence the unit
// failure distribution, src/failure) spreads evenly across the fabric.
// It is the duty-cycle complement of CoolestFirst — utilization-history
// aware but instantaneous-temperature and variation blind, which is
// exactly the regime where per-unit failure modeling shows the gap:
// leveling wear maximizes the k-of-n fabric's time-to-k-deaths, but
// ignoring thermals lets every core age faster than it needs to.
#pragma once

#include "runtime/mapping.hpp"

namespace hayat {

/// Greedy least-worn-core placement; ties (e.g. the pristine epoch-0
/// chip) break toward the coldest predicted core so the first mapping is
/// still sane.
class UtilizationAwarePolicy : public MappingPolicy {
 public:
  UtilizationAwarePolicy() = default;

  std::string name() const override { return "UtilizationAware"; }
  Mapping map(const PolicyContext& context) override;
};

}  // namespace hayat
