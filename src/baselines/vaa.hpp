// VAA — the state-of-the-art comparison partner (Section VI).
//
// "We compare our approach to state-of-the-art mapping approach as used
// in [28] (Fattah et al., smart hill climbing). For fairness of
// comparison, we extended the approach of [28] towards being variability-
// and aging-aware for maximum throughput mapping, to support epoch
// knowledge, DTM, core-level frequency scaling support, temperature
// dependent leakage increase, etc. For brevity, we call it VAA."
//
// The mapper follows Fattah's SHiC structure: per application, a *first
// node* is selected by hill climbing on a region-availability score, then
// the application's threads grow a contiguous region around it (BFS over
// idle cores).  The variability/aging extension filters target cores by
// the thread's frequency requirement against *current aged* frequencies
// and runs threads at exactly their required frequency.  What VAA does
// NOT do — by design, this is the paper's point — is reason about dark
// silicon placement, spatial temperature, or future health: its regions
// are dense, which Section II shows leads to hot DCMs and faster aging.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "runtime/mapping.hpp"

namespace hayat {

/// Tuning of the VAA mapper.
struct VaaConfig {
  /// Radius (in Manhattan distance) of the availability neighbourhood the
  /// hill climbing scores first-node candidates with.
  int availabilityRadius = 2;
  /// Seed for the randomized hill-climb starts.
  std::uint64_t seed = 1;
};

/// The extended Fattah [28] baseline.
class VaaPolicy : public MappingPolicy {
 public:
  explicit VaaPolicy(VaaConfig config = {});

  std::string name() const override { return "VAA"; }

  Mapping map(const PolicyContext& context) override;

  /// Incremental arrival: grows one new contiguous region for the
  /// arriving application around the existing assignment (the same SHiC
  /// first-node + BFS procedure, with already-busy cores excluded).
  Mapping placeApplication(const PolicyContext& context,
                           const Mapping& existing, int appIndex,
                           int activeThreads = -1) override;

 private:
  void placeOneApplication(const PolicyContext& context, Mapping& mapping,
                           std::vector<bool>& busy, int appIndex, int k);

  VaaConfig config_;
  Rng rng_;
};

}  // namespace hayat
