#include "baselines/utilization_aware.hpp"

#include <algorithm>

#include "baselines/simple_policies.hpp"
#include "common/error.hpp"
#include "runtime/thermal_predictor.hpp"

namespace hayat {

Mapping UtilizationAwarePolicy::map(const PolicyContext& context) {
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  const Chip& chip = *context.chip;
  const int n = chip.coreCount();
  const std::vector<int> parallelism =
      chooseParallelism(*context.mix, onCoreBudget(context));
  std::vector<RunnableThread> threads =
      runnableThreads(*context.mix, parallelism);

  // Hottest (highest-power) threads place first so they take the
  // least-worn spots.
  std::sort(threads.begin(), threads.end(),
            [](const RunnableThread& a, const RunnableThread& b) {
              return a.averagePower > b.averagePower;
            });

  // The idle-chip thermal baseline only serves as the tie-break, so one
  // prediction up front is enough (no per-placement refresh).
  const ThermalPredictor predictor(*context.thermal, *context.leakage);
  const Vector dynPower(static_cast<std::size_t>(n), 0.0);
  const std::vector<bool> on(static_cast<std::size_t>(n), false);
  const ThermalPredictor::Baseline baseline =
      predictor.makeBaseline(dynPower, on);

  // Lexicographic score: least consumed life first, coldest second.
  const auto better = [&](int a, int b) {
    const double wearA = context.observedWearOf(a);
    const double wearB = context.observedWearOf(b);
    if (wearA != wearB) return wearA < wearB;
    return baseline.temperatures[static_cast<std::size_t>(a)] <
           baseline.temperatures[static_cast<std::size_t>(b)];
  };

  Mapping mapping(n);
  for (const RunnableThread& t : threads) {
    int best = -1;
    for (int c = 0; c < n; ++c) {
      if (mapping.coreBusy(c)) continue;
      if (context.observedFmax(c) < t.minFrequency) continue;
      if (best < 0 || better(c, best)) best = c;
    }
    if (best < 0) {
      // Requirement infeasible everywhere: least-worn idle core
      // regardless of frequency.
      for (int c = 0; c < n; ++c) {
        if (mapping.coreBusy(c)) continue;
        if (best < 0 || better(c, best)) best = c;
      }
    }
    HAYAT_REQUIRE(best >= 0, "no idle core left");
    mapping.assign(t.ref, best,
                   operatingFrequency(context, best, t.minFrequency),
                   t.minFrequency);
  }
  return mapping;
}

}  // namespace hayat
