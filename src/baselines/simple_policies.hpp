// Ablation baselines.
//
// These two mappers bracket the design space between VAA and Hayat and
// back the DESIGN.md ablation benches:
//
//  * RandomPolicy      — frequency-feasible but otherwise uniformly random
//                        placement; no thermal or aging reasoning at all.
//  * CoolestFirstPolicy — temperature-aware but aging/variation-blind:
//                        threads greedily take the coldest predicted core
//                        (the classic DTM-style heuristic, and the
//                        Section II "migrating to cores selected only by
//                        temperature" pitfall that degrades fast cores).
#pragma once

#include "common/rng.hpp"
#include "runtime/mapping.hpp"
#include "runtime/thermal_predictor.hpp"

namespace hayat {

/// Frequency-feasible random placement.
class RandomPolicy : public MappingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 7);

  std::string name() const override { return "Random"; }
  Mapping map(const PolicyContext& context) override;

 private:
  Rng rng_;
};

/// Greedy coldest-core placement using the online thermal predictor.
class CoolestFirstPolicy : public MappingPolicy {
 public:
  CoolestFirstPolicy() = default;

  std::string name() const override { return "CoolestFirst"; }
  Mapping map(const PolicyContext& context) override;
};

/// Shared helper: on-core budget for a context (floor of the dark-silicon
/// constraint).
int onCoreBudget(const PolicyContext& context);

}  // namespace hayat
