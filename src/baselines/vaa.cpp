#include "baselines/vaa.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace hayat {

namespace {

/// Availability score of a first-node candidate: number of idle cores
/// within the Manhattan radius (Fattah's square-region availability).
int availabilityScore(const GridShape& grid, const std::vector<bool>& busy,
                      int core, int radius) {
  const TilePos p = grid.posOf(core);
  int score = 0;
  for (int dr = -radius; dr <= radius; ++dr) {
    for (int dc = -radius; dc <= radius; ++dc) {
      const TilePos q{p.row + dr, p.col + dc};
      if (!grid.contains(q)) continue;
      if (!busy[static_cast<std::size_t>(grid.indexOf(q))]) ++score;
    }
  }
  return score;
}

}  // namespace

VaaPolicy::VaaPolicy(VaaConfig config) : config_(config), rng_(config.seed) {
  HAYAT_REQUIRE(config.availabilityRadius >= 1,
                "availability radius must be >= 1");
}

void VaaPolicy::placeOneApplication(const PolicyContext& context,
                                    Mapping& mapping, std::vector<bool>& busy,
                                    int appIndex, int k) {
  const Chip& chip = *context.chip;
  const GridShape& grid = chip.grid();
  const int n = chip.coreCount();
  const Application& app =
      context.mix->applications[static_cast<std::size_t>(appIndex)];
  HAYAT_REQUIRE(k >= app.minThreads() && k <= app.maxThreads(),
                "parallelism outside the malleable range");

  // --- First-node selection by hill climbing on availability. ---
  // Random start on an idle core, then greedily move to the 4-neighbour
  // with the best score until a local maximum.
  int node = -1;
  for (int attempt = 0; attempt < 4 * n && node < 0; ++attempt) {
    const int c = rng_.uniformInt(n);
    if (!busy[static_cast<std::size_t>(c)]) node = c;
  }
  if (node < 0) {
    for (int c = 0; c < n && node < 0; ++c)
      if (!busy[static_cast<std::size_t>(c)]) node = c;
  }
  HAYAT_REQUIRE(node >= 0, "no idle core left for application placement");
  bool improved = true;
  while (improved) {
    improved = false;
    int bestScore =
        availabilityScore(grid, busy, node, config_.availabilityRadius);
    for (int nb : grid.neighbors4(node)) {
      if (busy[static_cast<std::size_t>(nb)]) continue;
      const int score =
          availabilityScore(grid, busy, nb, config_.availabilityRadius);
      if (score > bestScore) {
        bestScore = score;
        node = nb;
        improved = true;
      }
    }
  }

  // --- Contiguous region growth (BFS) from the first node. ---
  std::vector<int> region;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> frontier{node};
  seen[static_cast<std::size_t>(node)] = true;
  while (!frontier.empty() && static_cast<int>(region.size()) < k) {
    // Closest-to-node first keeps the region compact.
    std::sort(frontier.begin(), frontier.end(), [&](int a, int b) {
      return grid.manhattan(a, node) < grid.manhattan(b, node);
    });
    const int c = frontier.front();
    frontier.erase(frontier.begin());
    if (!busy[static_cast<std::size_t>(c)]) region.push_back(c);
    for (int nb : grid.neighbors4(c)) {
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = true;
        frontier.push_back(nb);
      }
    }
  }
  // Fragmented chip: fall back to nearest idle cores anywhere.
  if (static_cast<int>(region.size()) < k) {
    std::vector<int> rest;
    for (int c = 0; c < n; ++c) {
      if (busy[static_cast<std::size_t>(c)]) continue;
      if (std::find(region.begin(), region.end(), c) != region.end())
        continue;
      rest.push_back(c);
    }
    std::sort(rest.begin(), rest.end(), [&](int a, int b) {
      return grid.manhattan(a, node) < grid.manhattan(b, node);
    });
    for (int c : rest) {
      if (static_cast<int>(region.size()) >= k) break;
      region.push_back(c);
    }
  }
  HAYAT_REQUIRE(static_cast<int>(region.size()) == k,
                "insufficient idle cores for the workload mix");

  // --- Aging/variability-aware thread-to-core matching. ---
  // Within the region, the most demanding threads take the fastest
  // (current, aged) cores — maximum-throughput matching that always
  // meets f_min when the region can.
  std::sort(region.begin(), region.end(), [&](int a, int b) {
    return context.observedFmax(a) > context.observedFmax(b);
  });
  std::vector<int> threadOrder(static_cast<std::size_t>(k));
  for (int t = 0; t < k; ++t) threadOrder[static_cast<std::size_t>(t)] = t;
  std::sort(threadOrder.begin(), threadOrder.end(), [&](int a, int b) {
    return app.minFrequencyAt(a, k) > app.minFrequencyAt(b, k);
  });
  for (int idx = 0; idx < k; ++idx) {
    const int t = threadOrder[static_cast<std::size_t>(idx)];
    const int core = region[static_cast<std::size_t>(idx)];
    const Hertz required = app.minFrequencyAt(t, k);
    // Threads "only run at their required frequency and not faster";
    // if the aged core cannot reach f_min the thread runs at the core's
    // limit (a throughput violation the DTM statistics expose).
    const Hertz freq = operatingFrequency(context, core, required);
    mapping.assign(ThreadRef{appIndex, t}, core, freq, required);
    busy[static_cast<std::size_t>(core)] = true;
  }
}

Mapping VaaPolicy::map(const PolicyContext& context) {
  const telemetry::Span mapSpan("policy.vaa.map");
  if (telemetry::enabled()) {
    static telemetry::Counter& decisions =
        telemetry::Registry::global().counter(
            "hayat_policy_vaa_decisions_total");
    decisions.add();
  }
  HAYAT_REQUIRE(context.chip && context.mix, "incomplete policy context");
  const Chip& chip = *context.chip;
  const int n = chip.coreCount();

  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  const std::vector<int> parallelism =
      chooseParallelism(*context.mix, maxOn);

  Mapping mapping(n);
  std::vector<bool> busy(static_cast<std::size_t>(n), false);

  // Applications with more threads are placed first (they need the
  // largest contiguous regions) — SHiC's ordering.
  std::vector<int> appOrder(context.mix->applications.size());
  for (std::size_t j = 0; j < appOrder.size(); ++j)
    appOrder[j] = static_cast<int>(j);
  std::sort(appOrder.begin(), appOrder.end(), [&](int a, int b) {
    return parallelism[static_cast<std::size_t>(a)] >
           parallelism[static_cast<std::size_t>(b)];
  });

  for (int j : appOrder)
    placeOneApplication(context, mapping, busy, j,
                        parallelism[static_cast<std::size_t>(j)]);
  return mapping;
}

Mapping VaaPolicy::placeApplication(const PolicyContext& context,
                                    const Mapping& existing, int appIndex,
                                    int activeThreads) {
  HAYAT_REQUIRE(context.chip && context.mix, "incomplete policy context");
  HAYAT_REQUIRE(
      appIndex >= 0 &&
          appIndex < static_cast<int>(context.mix->applications.size()),
      "application index out of range");
  const Application& app =
      context.mix->applications[static_cast<std::size_t>(appIndex)];
  const int k = activeThreads > 0 ? activeThreads : app.maxThreads();

  const int n = context.chip->coreCount();
  const int maxOn = std::max(
      1, static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
  HAYAT_REQUIRE(existing.assignedCount() + k <= maxOn,
                "arriving application would violate the dark-silicon budget");

  Mapping mapping = existing;
  std::vector<bool> busy(static_cast<std::size_t>(n), false);
  for (int c = 0; c < n; ++c)
    busy[static_cast<std::size_t>(c)] = mapping.coreBusy(c);
  placeOneApplication(context, mapping, busy, appIndex, k);
  return mapping;
}

}  // namespace hayat
