#include "baselines/simple_policies.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hayat {

int onCoreBudget(const PolicyContext& context) {
  HAYAT_REQUIRE(context.chip != nullptr, "incomplete policy context");
  const int n = context.chip->coreCount();
  return std::max(1,
                  static_cast<int>(n * (1.0 - context.minDarkFraction) + 1e-9));
}

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed) {}

Mapping RandomPolicy::map(const PolicyContext& context) {
  HAYAT_REQUIRE(context.chip && context.mix, "incomplete policy context");
  const Chip& chip = *context.chip;
  const int n = chip.coreCount();
  const std::vector<int> parallelism =
      chooseParallelism(*context.mix, onCoreBudget(context));
  const std::vector<RunnableThread> threads =
      runnableThreads(*context.mix, parallelism);

  Mapping mapping(n);
  for (const RunnableThread& t : threads) {
    // Collect feasible idle cores; fall back to all idle cores if none
    // meets the requirement.
    std::vector<int> feasible;
    std::vector<int> idle;
    for (int c = 0; c < n; ++c) {
      if (mapping.coreBusy(c)) continue;
      idle.push_back(c);
      if (context.observedFmax(c) >= t.minFrequency) feasible.push_back(c);
    }
    HAYAT_REQUIRE(!idle.empty(), "no idle core left");
    const std::vector<int>& pool = feasible.empty() ? idle : feasible;
    const int core =
        pool[static_cast<std::size_t>(rng_.uniformInt(static_cast<int>(pool.size())))];
    mapping.assign(t.ref, core,
                   operatingFrequency(context, core, t.minFrequency),
                   t.minFrequency);
  }
  return mapping;
}

Mapping CoolestFirstPolicy::map(const PolicyContext& context) {
  HAYAT_REQUIRE(context.chip && context.mix && context.thermal &&
                    context.leakage,
                "incomplete policy context");
  const Chip& chip = *context.chip;
  const int n = chip.coreCount();
  const std::vector<int> parallelism =
      chooseParallelism(*context.mix, onCoreBudget(context));
  std::vector<RunnableThread> threads =
      runnableThreads(*context.mix, parallelism);

  // Hottest (highest-power) threads place first so they take the coldest
  // spots.
  std::sort(threads.begin(), threads.end(),
            [](const RunnableThread& a, const RunnableThread& b) {
              return a.averagePower > b.averagePower;
            });

  const ThermalPredictor predictor(*context.thermal, *context.leakage);
  Mapping mapping(n);
  Vector dynPower(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> on(static_cast<std::size_t>(n), false);
  ThermalPredictor::Baseline baseline = predictor.makeBaseline(dynPower, on);

  for (const RunnableThread& t : threads) {
    int best = -1;
    double bestTemp = 0.0;
    for (int c = 0; c < n; ++c) {
      if (mapping.coreBusy(c)) continue;
      if (context.observedFmax(c) < t.minFrequency) continue;
      const double temp = baseline.temperatures[static_cast<std::size_t>(c)];
      if (best < 0 || temp < bestTemp) {
        best = c;
        bestTemp = temp;
      }
    }
    if (best < 0) {
      // Requirement infeasible everywhere: fall back to the coldest idle
      // core regardless of frequency.
      for (int c = 0; c < n; ++c) {
        if (mapping.coreBusy(c)) continue;
        const double temp = baseline.temperatures[static_cast<std::size_t>(c)];
        if (best < 0 || temp < bestTemp) {
          best = c;
          bestTemp = temp;
        }
      }
    }
    HAYAT_REQUIRE(best >= 0, "no idle core left");
    const Hertz freq = operatingFrequency(context, best, t.minFrequency);
    mapping.assign(t.ref, best, freq, t.minFrequency);

    // Update the predictor baseline with the placed load.
    dynPower[static_cast<std::size_t>(best)] =
        t.averagePower * (freq / context.nominalFrequency);
    on[static_cast<std::size_t>(best)] = true;
    baseline = predictor.makeBaseline(dynPower, on);
  }
  return mapping;
}

}  // namespace hayat
