// Malleable multi-threaded applications (Section III application model).
//
// A_j = { tau_(j,1), ..., tau_(j,Kj) } where the thread count K_j "can
// vary depending upon the value of N_on" (the malleable model of
// [23, 24]).  An Application owns the per-thread profiles for its maximum
// degree of parallelism; a Mapping policy may run it with any K in
// [minThreads, maxThreads].  When K shrinks, the same total work spreads
// over fewer threads, so each active thread's required minimum frequency
// rises proportionally — captured by minFrequencyAt().
#pragma once

#include <string>
#include <vector>

#include "workload/thread_profile.hpp"

namespace hayat {

/// One malleable application instance.
class Application {
 public:
  Application(std::string name, std::vector<ThreadProfile> threads,
              int minThreads);

  const std::string& name() const { return name_; }

  /// Maximum degree of parallelism (number of owned thread profiles).
  int maxThreads() const { return static_cast<int>(threads_.size()); }

  /// Minimum degree of parallelism that still meets the deadline at
  /// nominal frequency.
  int minThreads() const { return minThreads_; }

  const ThreadProfile& thread(int k) const;

  /// Minimum per-thread frequency when running with k threads: the
  /// profile f_min scaled by maxThreads / k (fewer threads -> each must
  /// run faster to hold application throughput).
  Hertz minFrequencyAt(int threadIndex, int activeThreads) const;

  /// Sum of average thread powers at full parallelism (for mix sizing).
  Watts totalAveragePower() const;

 private:
  std::string name_;
  std::vector<ThreadProfile> threads_;
  int minThreads_;
};

/// A set of concurrently executing applications — one evaluation
/// scenario's workload (the paper's "mixes using the multithreaded
/// applications from the Parsec benchmark suite").
struct WorkloadMix {
  std::vector<Application> applications;

  /// Total thread count at maximum parallelism.
  int totalMaxThreads() const;

  /// Total thread count at minimum parallelism.
  int totalMinThreads() const;
};

}  // namespace hayat
