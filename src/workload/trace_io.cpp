#include "workload/trace_io.hpp"

#include <fstream>
#include <map>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace hayat {

namespace {

struct Row {
  std::string app;
  int minThreads = 1;
  Hertz fMin = 0.0;
  int thread = 0;
  ThreadPhase phase;
};

Row parseRow(const std::string& line, int lineNumber) {
  std::istringstream ls(line);
  std::string cell;
  std::vector<std::string> cells;
  while (std::getline(ls, cell, ',')) cells.push_back(cell);
  HAYAT_REQUIRE(cells.size() == 8,
                "workload CSV line " + std::to_string(lineNumber) +
                    ": expected 8 columns, got " +
                    std::to_string(cells.size()));
  Row row;
  try {
    row.app = cells[0];
    row.minThreads = std::stoi(cells[1]);
    row.fMin = std::stod(cells[2]);
    row.thread = std::stoi(cells[3]);
    row.phase.duration = std::stod(cells[4]);
    row.phase.dynamicPower = std::stod(cells[5]);
    row.phase.dutyCycle = std::stod(cells[6]);
    row.phase.ipc = std::stod(cells[7]);
  } catch (const std::exception&) {
    throw Error("workload CSV line " + std::to_string(lineNumber) +
                ": malformed numeric field");
  }
  HAYAT_REQUIRE(!row.app.empty(),
                "workload CSV line " + std::to_string(lineNumber) +
                    ": empty application name");
  return row;
}

}  // namespace

WorkloadMix readWorkloadCsv(std::istream& in) {
  WorkloadMix mix;

  // Accumulation state for the application currently being read.
  std::string currentApp;
  int currentMinThreads = 1;
  Hertz currentFmin = 0.0;
  int currentThread = -1;
  std::vector<ThreadPhase> phases;
  std::vector<ThreadProfile> threads;

  auto flushThread = [&]() {
    if (phases.empty()) return;
    threads.emplace_back(std::move(phases), currentFmin);
    phases.clear();
  };
  auto flushApp = [&]() {
    flushThread();
    if (threads.empty()) return;
    mix.applications.emplace_back(currentApp, std::move(threads),
                                  currentMinThreads);
    threads.clear();
  };

  std::string line;
  int lineNumber = 0;
  while (std::getline(in, line)) {
    ++lineNumber;
    // Trim trailing CR (Windows files) and skip comments/blanks.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const Row row = parseRow(line, lineNumber);

    if (row.app != currentApp) {
      flushApp();
      currentApp = row.app;
      currentMinThreads = row.minThreads;
      currentFmin = row.fMin;
      currentThread = row.thread;
    } else if (row.thread != currentThread) {
      HAYAT_REQUIRE(row.thread == currentThread + 1,
                    "workload CSV line " + std::to_string(lineNumber) +
                        ": thread indices must be contiguous");
      flushThread();
      currentThread = row.thread;
    }
    phases.push_back(row.phase);
  }
  flushApp();
  HAYAT_REQUIRE(!mix.applications.empty(),
                "workload CSV contained no applications");
  return mix;
}

WorkloadMix readWorkloadCsvFile(const std::string& path) {
  std::ifstream in(path);
  HAYAT_REQUIRE(in.is_open(), "cannot open workload CSV '" + path + "'");
  return readWorkloadCsv(in);
}

void writeWorkloadCsv(std::ostream& out, const WorkloadMix& mix) {
  out << "# application,minThreads,fMinHz,thread,phaseDurationS,"
         "dynamicPowerW,dutyCycle,ipc\n";
  out << std::setprecision(12);
  // The reader delimits applications by name changes, so repeated
  // instances of the same benchmark get an "@k" instance suffix.
  std::map<std::string, int> seen;
  for (const Application& app : mix.applications) {
    std::string name = app.name();
    const int instance = seen[name]++;
    if (instance > 0) name += "@" + std::to_string(instance);
    for (int t = 0; t < app.maxThreads(); ++t) {
      const ThreadProfile& profile = app.thread(t);
      for (int p = 0; p < profile.phaseCount(); ++p) {
        const ThreadPhase& phase = profile.phase(p);
        out << name << ',' << app.minThreads() << ','
            << profile.minFrequency() << ',' << t << ',' << phase.duration
            << ',' << phase.dynamicPower << ',' << phase.dutyCycle << ','
            << phase.ipc << '\n';
      }
    }
  }
  HAYAT_REQUIRE(out.good(), "workload CSV write failed");
}

void writeWorkloadCsvFile(const std::string& path, const WorkloadMix& mix) {
  std::ofstream out(path);
  HAYAT_REQUIRE(out.is_open(), "cannot open '" + path + "' for writing");
  writeWorkloadCsv(out, mix);
}

}  // namespace hayat
