#include "workload/application.hpp"

#include "common/error.hpp"

namespace hayat {

Application::Application(std::string name, std::vector<ThreadProfile> threads,
                         int minThreads)
    : name_(std::move(name)),
      threads_(std::move(threads)),
      minThreads_(minThreads) {
  HAYAT_REQUIRE(!threads_.empty(), "application needs >= 1 thread");
  HAYAT_REQUIRE(minThreads >= 1 && minThreads <= maxThreads(),
                "minThreads must be in [1, maxThreads]");
}

const ThreadProfile& Application::thread(int k) const {
  HAYAT_REQUIRE(k >= 0 && k < maxThreads(), "thread index out of range");
  return threads_[static_cast<std::size_t>(k)];
}

Hertz Application::minFrequencyAt(int threadIndex, int activeThreads) const {
  HAYAT_REQUIRE(activeThreads >= minThreads_ && activeThreads <= maxThreads(),
                "active thread count outside the malleable range");
  const ThreadProfile& profile = thread(threadIndex);
  return profile.minFrequency() *
         (static_cast<double>(maxThreads()) / activeThreads);
}

Watts Application::totalAveragePower() const {
  Watts acc = 0.0;
  for (const ThreadProfile& t : threads_) acc += t.averagePower();
  return acc;
}

int WorkloadMix::totalMaxThreads() const {
  int acc = 0;
  for (const Application& a : applications) acc += a.maxThreads();
  return acc;
}

int WorkloadMix::totalMinThreads() const {
  int acc = 0;
  for (const Application& a : applications) acc += a.minThreads();
  return acc;
}

}  // namespace hayat
