// Per-thread execution profiles.
//
// The paper drives its simulator with "power and performance traces
// obtained through cycle-accurate simulations from integrated closed-loop
// Gem5 and McPAT" runs of Parsec.  A thread profile here is the
// distilled form those traces take by the time the run-time system
// consumes them: a cyclic sequence of phases, each with a dynamic power
// (at nominal frequency), a duty cycle (PMOS stress fraction), and an IPC,
// plus the thread's minimum frequency f_min derived from its throughput
// constraint (Section V: "throughput constraints for these tasks as a
// function of the minimum required frequency they need to run on").
#pragma once

#include <vector>

#include "common/units.hpp"

namespace hayat {

/// One phase of a thread's execution trace.
struct ThreadPhase {
  Seconds duration = 1.0;       ///< phase length in trace time
  Watts dynamicPower = 3.0;     ///< at nominal frequency and chip Vdd
  double dutyCycle = 0.5;       ///< PMOS stress fraction in [0, 1]
  double ipc = 1.0;             ///< instructions per cycle (for IPS)
};

/// A cyclic phase trace plus the thread's throughput constraint.
class ThreadProfile {
 public:
  ThreadProfile(std::vector<ThreadPhase> phases, Hertz minFrequency);

  /// The thread's minimum frequency to meet its deadline/throughput.
  Hertz minFrequency() const { return minFrequency_; }

  int phaseCount() const { return static_cast<int>(phases_.size()); }
  const ThreadPhase& phase(int i) const;

  /// Total length of one trace period.
  Seconds period() const { return period_; }

  /// Phase active at trace time t (the trace repeats cyclically).
  const ThreadPhase& phaseAt(Seconds t) const;

  /// Time-weighted average dynamic power across one period.
  Watts averagePower() const;

  /// Time-weighted average duty cycle across one period.
  double averageDuty() const;

  /// Worst-case (maximum) dynamic power across phases.
  Watts peakPower() const;

  /// Worst-case duty cycle across phases.
  double peakDuty() const;

  /// Throughput at frequency f [instructions per second], using the
  /// period-average IPC.
  double instructionsPerSecond(Hertz frequency) const;

 private:
  std::vector<ThreadPhase> phases_;
  Hertz minFrequency_;
  Seconds period_ = 0.0;
};

}  // namespace hayat
