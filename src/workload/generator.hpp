// Synthetic Parsec-like workload generator.
//
// The paper generates "several mixes using the multithreaded applications
// from the Parsec benchmark suite" via Gem5+McPAT traces.  Those traces
// are not redistributable, so this generator synthesizes statistically
// equivalent profiles: each named benchmark carries the power envelope,
// duty-cycle band, IPC band, phase behaviour and malleable parallelism
// range characteristic of its Parsec namesake (compute-bound vs.
// memory-bound vs. strongly phased).  The run-time policies only consume
// these distilled quantities, so the substitution preserves the
// experiment (DESIGN.md §1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/application.hpp"

namespace hayat {

/// Statistical envelope of one synthetic benchmark.
struct BenchmarkSpec {
  std::string name;
  Watts powerLo = 2.0;   ///< per-thread dynamic power band @ nominal f
  Watts powerHi = 5.0;
  double dutyLo = 0.4;   ///< PMOS stress duty band
  double dutyHi = 0.7;
  double ipcLo = 0.8;
  double ipcHi = 1.6;
  double fMinFracLo = 0.4;  ///< f_min band as fraction of nominal f
  double fMinFracHi = 0.7;
  int minParallelism = 4;
  int maxParallelism = 16;
  int phasesLo = 2;       ///< phases per thread trace period
  int phasesHi = 5;
  Seconds phaseDurLo = 0.2;
  Seconds phaseDurHi = 1.5;
};

/// The synthetic Parsec-like suite and mix construction.
class ParsecLikeSuite {
 public:
  /// All benchmark envelopes (10 Parsec-named entries).
  static const std::vector<BenchmarkSpec>& specs();

  /// Finds a spec by name (nullopt if unknown).
  static std::optional<BenchmarkSpec> find(const std::string& name);

  /// Instantiates an application from a spec.  `threads` <= 0 picks a
  /// random parallelism within the spec's malleable range.
  static Application instantiate(const BenchmarkSpec& spec, Rng& rng,
                                 Hertz nominalFrequency, int threads = -1);

  /// Builds a workload mix whose total maximum thread count approaches
  /// (never exceeds) `targetThreads` — the N_on budget of the scenario.
  static WorkloadMix makeMix(Rng& rng, int targetThreads,
                             Hertz nominalFrequency);
};

}  // namespace hayat
