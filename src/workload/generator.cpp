#include "workload/generator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hayat {

const std::vector<BenchmarkSpec>& ParsecLikeSuite::specs() {
  // Envelopes shaped after published Parsec characterizations: compute
  // kernels (blackscholes, swaptions) are hot and steady; memory-bound
  // codes (streamcluster, canneal) run cooler with low duty; x264 and
  // bodytrack (the two apps named in Fig. 2's setup) are hot and strongly
  // phased.
  static const std::vector<BenchmarkSpec> kSpecs = {
      {"blackscholes", 3.5, 4.5, 0.60, 0.80, 1.4, 2.0, 0.50, 0.70, 4, 16,
       2, 3, 0.5, 1.5},
      {"bodytrack", 4.0, 6.5, 0.50, 0.80, 1.0, 1.8, 0.60, 0.85, 4, 16,
       3, 5, 0.2, 1.0},
      {"x264", 2.5, 6.5, 0.40, 0.80, 0.9, 1.7, 0.55, 0.80, 4, 16,
       4, 6, 0.2, 0.8},
      {"streamcluster", 2.0, 3.5, 0.30, 0.50, 0.5, 0.9, 0.30, 0.50, 4, 16,
       2, 4, 0.4, 1.2},
      {"canneal", 1.8, 3.0, 0.25, 0.45, 0.4, 0.8, 0.25, 0.40, 2, 8,
       2, 3, 0.5, 1.5},
      {"ferret", 3.0, 5.0, 0.50, 0.70, 0.9, 1.5, 0.50, 0.70, 4, 12,
       3, 5, 0.3, 1.0},
      {"fluidanimate", 3.5, 5.5, 0.55, 0.75, 1.1, 1.7, 0.50, 0.70, 4, 16,
       2, 4, 0.4, 1.2},
      {"swaptions", 3.8, 5.0, 0.65, 0.85, 1.3, 1.9, 0.50, 0.75, 2, 12,
       2, 3, 0.6, 1.5},
      {"dedup", 2.2, 4.0, 0.35, 0.60, 0.7, 1.2, 0.35, 0.55, 4, 12,
       3, 5, 0.2, 0.9},
      {"vips", 3.0, 5.0, 0.50, 0.70, 0.9, 1.5, 0.45, 0.65, 4, 12,
       3, 5, 0.3, 1.0},
  };
  return kSpecs;
}

std::optional<BenchmarkSpec> ParsecLikeSuite::find(const std::string& name) {
  for (const BenchmarkSpec& s : specs())
    if (s.name == name) return s;
  return std::nullopt;
}

Application ParsecLikeSuite::instantiate(const BenchmarkSpec& spec, Rng& rng,
                                         Hertz nominalFrequency,
                                         int threads) {
  HAYAT_REQUIRE(nominalFrequency > 0.0, "nominal frequency must be positive");
  HAYAT_REQUIRE(spec.minParallelism >= 1 &&
                    spec.maxParallelism >= spec.minParallelism,
                "invalid parallelism range");
  int k = threads;
  if (k <= 0) {
    k = spec.minParallelism +
        rng.uniformInt(spec.maxParallelism - spec.minParallelism + 1);
  }
  HAYAT_REQUIRE(k >= spec.minParallelism && k <= spec.maxParallelism,
                "requested thread count outside the spec's range");

  // All threads of an application share one f_min (the throughput
  // constraint is per application); per-thread traces differ in phases.
  const Hertz fMin =
      nominalFrequency * rng.uniform(spec.fMinFracLo, spec.fMinFracHi);

  std::vector<ThreadProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(k));
  for (int t = 0; t < k; ++t) {
    const int phaseCount =
        spec.phasesLo + rng.uniformInt(spec.phasesHi - spec.phasesLo + 1);
    std::vector<ThreadPhase> phases;
    phases.reserve(static_cast<std::size_t>(phaseCount));
    for (int p = 0; p < phaseCount; ++p) {
      ThreadPhase phase;
      phase.duration = rng.uniform(spec.phaseDurLo, spec.phaseDurHi);
      phase.dynamicPower = rng.uniform(spec.powerLo, spec.powerHi);
      phase.dutyCycle = rng.uniform(spec.dutyLo, spec.dutyHi);
      phase.ipc = rng.uniform(spec.ipcLo, spec.ipcHi);
      phases.push_back(phase);
    }
    profiles.emplace_back(std::move(phases), fMin);
  }
  return Application(spec.name, std::move(profiles), spec.minParallelism);
}

WorkloadMix ParsecLikeSuite::makeMix(Rng& rng, int targetThreads,
                                     Hertz nominalFrequency) {
  HAYAT_REQUIRE(targetThreads >= 1, "target thread budget must be >= 1");
  const auto& all = specs();
  int smallestMin = all.front().minParallelism;
  for (const BenchmarkSpec& s : all)
    smallestMin = std::min(smallestMin, s.minParallelism);

  WorkloadMix mix;
  int remaining = targetThreads;
  // Keep drawing applications until no benchmark fits the leftover budget
  // (rejected draws are bounded to keep the loop finite).
  int rejectedDraws = 0;
  while (remaining >= smallestMin && rejectedDraws < 1000) {
    const BenchmarkSpec& spec =
        all[static_cast<std::size_t>(rng.uniformInt(static_cast<int>(all.size())))];
    if (spec.minParallelism > remaining) {
      ++rejectedDraws;
      continue;
    }
    const int maxK = std::min(spec.maxParallelism, remaining);
    const int k = spec.minParallelism +
                  rng.uniformInt(maxK - spec.minParallelism + 1);
    mix.applications.push_back(
        instantiate(spec, rng, nominalFrequency, k));
    remaining -= k;
    if (static_cast<int>(mix.applications.size()) >= targetThreads) break;
  }
  if (mix.applications.empty()) {
    // Budget below every benchmark's minimum: run the smallest one anyway
    // (a mix must contain at least one application).
    for (const BenchmarkSpec& s : all) {
      if (s.minParallelism == smallestMin) {
        mix.applications.push_back(
            instantiate(s, rng, nominalFrequency, smallestMin));
        break;
      }
    }
  }
  return mix;
}

}  // namespace hayat
