#include "workload/thread_profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hayat {

ThreadProfile::ThreadProfile(std::vector<ThreadPhase> phases,
                             Hertz minFrequency)
    : phases_(std::move(phases)), minFrequency_(minFrequency) {
  HAYAT_REQUIRE(!phases_.empty(), "thread profile needs >= 1 phase");
  HAYAT_REQUIRE(minFrequency > 0.0, "minimum frequency must be positive");
  for (const ThreadPhase& p : phases_) {
    HAYAT_REQUIRE(p.duration > 0.0, "phase duration must be positive");
    HAYAT_REQUIRE(p.dynamicPower >= 0.0, "negative phase power");
    HAYAT_REQUIRE(p.dutyCycle >= 0.0 && p.dutyCycle <= 1.0,
                  "phase duty cycle must be in [0, 1]");
    HAYAT_REQUIRE(p.ipc > 0.0, "phase IPC must be positive");
    period_ += p.duration;
  }
}

const ThreadPhase& ThreadProfile::phase(int i) const {
  HAYAT_REQUIRE(i >= 0 && i < phaseCount(), "phase index out of range");
  return phases_[static_cast<std::size_t>(i)];
}

const ThreadPhase& ThreadProfile::phaseAt(Seconds t) const {
  HAYAT_REQUIRE(t >= 0.0, "negative trace time");
  Seconds within = std::fmod(t, period_);
  for (const ThreadPhase& p : phases_) {
    if (within < p.duration) return p;
    within -= p.duration;
  }
  return phases_.back();  // exact period boundary
}

Watts ThreadProfile::averagePower() const {
  double acc = 0.0;
  for (const ThreadPhase& p : phases_) acc += p.dynamicPower * p.duration;
  return acc / period_;
}

double ThreadProfile::averageDuty() const {
  double acc = 0.0;
  for (const ThreadPhase& p : phases_) acc += p.dutyCycle * p.duration;
  return acc / period_;
}

Watts ThreadProfile::peakPower() const {
  double peak = 0.0;
  for (const ThreadPhase& p : phases_) peak = std::max(peak, p.dynamicPower);
  return peak;
}

double ThreadProfile::peakDuty() const {
  double peak = 0.0;
  for (const ThreadPhase& p : phases_) peak = std::max(peak, p.dutyCycle);
  return peak;
}

double ThreadProfile::instructionsPerSecond(Hertz frequency) const {
  HAYAT_REQUIRE(frequency >= 0.0, "negative frequency");
  double ipcAcc = 0.0;
  for (const ThreadPhase& p : phases_) ipcAcc += p.ipc * p.duration;
  return (ipcAcc / period_) * frequency;
}

}  // namespace hayat
