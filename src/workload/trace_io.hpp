// Workload trace import/export.
//
// The paper drives its evaluation from Gem5+McPAT traces.  This module
// defines the on-disk format that lets downstream users feed their own
// cycle-accurate traces to the run-time system instead of the synthetic
// generator: a line-oriented CSV, one row per (application, thread,
// phase), with application-level metadata repeated per row.
//
//   # application,minThreads,fMinHz,thread,phaseDurationS,dynamicPowerW,dutyCycle,ipc
//   x264,4,1.8e9,0,0.25,5.1,0.62,1.4
//   x264,4,1.8e9,0,0.40,3.0,0.41,0.9
//   x264,4,1.8e9,1,0.33,4.8,0.58,1.3
//   ...
//
// Threads of one application must appear contiguously, phases in order.
// '#'-prefixed lines and blank lines are comments.  writeWorkloadCsv
// produces this format from any WorkloadMix, so synthetic mixes can be
// exported, hand-edited, and re-imported.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/application.hpp"

namespace hayat {

/// Parses a workload CSV (throws hayat::Error with a line number on
/// malformed input).
WorkloadMix readWorkloadCsv(std::istream& in);

/// File-path convenience overload.
WorkloadMix readWorkloadCsvFile(const std::string& path);

/// Serializes a mix in the format readWorkloadCsv accepts.
void writeWorkloadCsv(std::ostream& out, const WorkloadMix& mix);

/// File-path convenience overload.
void writeWorkloadCsvFile(const std::string& path, const WorkloadMix& mix);

}  // namespace hayat
