// Tiny blocking HTTP/1.1 client for the `hayat job` subcommands and the
// serve tests.
//
// One request per connection (the server answers `Connection: close`),
// fixed-length and chunked response bodies, and a streaming variant that
// hands each chunk to a callback as it arrives — the transport under
// `hayat job watch`, which tails a running job's result rows (the server
// frames exactly one result row per chunk).  Reuses the worker dialer
// (connectTcpWorker) so timeouts behave identically to the dispatcher's.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace hayat::serve {

struct HttpClientResponse {
  int status = 0;
  /// Header name/value pairs; names are lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;  ///< de-chunked when the server streamed

  std::string header(const std::string& name) const;
};

/// Performs one request and reads the entire response.  Returns false on
/// connect/write/read failure or an unparsable response; HTTP error
/// statuses still return true (check `out.status`).  `timeoutMs` bounds
/// the connect and each read.
bool httpRequest(const std::string& host, int port, const std::string& method,
                 const std::string& target, const std::string& body,
                 const std::vector<std::pair<std::string, std::string>>&
                     headers,
                 HttpClientResponse& out, int timeoutMs = 10000);

/// Streaming GET: invokes `onChunk` once per received chunk (for the job
/// results endpoint: one result row per call).  Returns false on
/// transport failure, an unparsable response, or a stream the server
/// closed without the terminating zero chunk (a truncated stream — e.g.
/// the job was cancelled mid-watch); a non-200 status returns true with
/// no chunks delivered.  `onChunk` returning false aborts the stream
/// (returns true).  `idleTimeoutMs` bounds the wait for each read — a
/// tail of a long-running job should pass a generous value.
bool httpStream(const std::string& host, int port, const std::string& target,
                const std::vector<std::pair<std::string, std::string>>&
                    headers,
                const std::function<bool(const std::string&)>& onChunk,
                int& statusOut, int idleTimeoutMs = 300000);

/// Splits "host:port"; throws hayat::Error on malformed input.
void parseHostPort(const std::string& text, std::string& host, int& port);

}  // namespace hayat::serve
