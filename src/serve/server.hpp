// The `hayat serve` daemon (DESIGN.md §3.12): a persistent multi-tenant
// sweep service over one listening socket.
//
// Request flow:
//
//   accept -> protocol sniff (framed-wire connections are counted and
//   closed; this socket speaks HTTP) -> incremental request parse with
//   hard size bounds (http.hpp) -> bearer auth for /jobs* -> router:
//
//     POST   /jobs               submit a spec (canonical wire text body)
//     GET    /jobs               list jobs
//     GET    /jobs/<id>          status (key=value lines)
//     GET    /jobs/<id>/results  chunked stream, one result row per chunk
//     DELETE /jobs/<id>          cancel
//     GET    /metrics            Prometheus text (unauthenticated)
//     GET    /healthz            liveness probe (unauthenticated)
//
// Jobs are journaled by the durable JobQueue before they are
// acknowledged, admitted by a background pump that bounds concurrently
// running jobs, and executed by the shared SweepScheduler — so two
// clients submitting the same spec share one computation and one result
// cache, and a SIGKILLed daemon replays its queue directory on restart
// and converges to byte-identical results.
//
// The results stream is the canonical writeRunResult records of tasks
// 0..n-1 in order: its concatenation is byte-identical to a one-shot
// `hayat sweep` of the same spec.  A cancelled or failed job's stream is
// closed without the terminating zero chunk, which clients observe as
// truncation rather than silent completion.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/http.hpp"
#include "serve/job_queue.hpp"
#include "serve/scheduler.hpp"

namespace hayat::serve {

struct ServeConfig {
  int port = 0;                 ///< 0 binds an ephemeral port (see port())
  std::string queueDir = "hayat_jobs";
  std::string authToken;        ///< "" serves unauthenticated
  std::string dispatch;         ///< worker fleet (§3.6); "" = local lanes
  int localWorkers = 2;
  JobQueue::Limits limits;
  int maxRunningJobs = 4;       ///< jobs attached to the scheduler at once
  bool cache = true;
  std::string cacheDir;
  double taskTimeoutSeconds = 300.0;
};

class ServeServer {
 public:
  explicit ServeServer(ServeConfig config);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, and starts the accept + job-pump threads.  Returns
  /// false when the port cannot be bound.
  bool start();

  /// The bound port (after start(); resolves port 0 to the real one).
  int port() const { return port_; }

  /// Stops admitting jobs: POST /jobs answers 503, everything already
  /// accepted keeps running.  The SIGTERM half of graceful drain.
  void beginDrain();
  bool draining() const { return draining_.load(); }

  /// Queued + running jobs — zero means a drain has quiesced.
  int activeJobs() const { return queue_.activeCount(); }

  /// Closes the listener and every open connection, stops the pump and
  /// the scheduler, joins all threads.  Idempotent.
  void stop();

  JobQueue& queue() { return queue_; }
  SweepScheduler& scheduler() { return *scheduler_; }

 private:
  struct RunningJob {
    std::shared_ptr<SpecRun> run;
    std::chrono::steady_clock::time_point started;
  };
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptLoop();
  void pumpLoop();
  void admitLocked();
  void handleConnection(int fd);
  void route(const HttpRequest& req, int fd);
  void streamResults(const std::string& id, int fd);
  bool authorized(const HttpRequest& req) const;
  void pruneConnections(bool joinAll);

  ServeConfig config_;
  JobQueue queue_;
  std::unique_ptr<SweepScheduler> scheduler_;

  int listenFd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::thread acceptThread_;
  std::thread pumpThread_;

  std::mutex runningMutex_;
  std::map<std::string, RunningJob> running_;

  std::mutex connsMutex_;
  std::list<std::unique_ptr<Conn>> conns_;
  std::atomic<std::uint64_t> streamSeq_{0};
};

/// `hayat serve`: runs a server until SIGTERM/SIGINT, then drains
/// gracefully (a second signal aborts the drain) and exits 0.
int serveMain(const ServeConfig& config);

}  // namespace hayat::serve
