#include "serve/scheduler.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "engine/result_cache.hpp"
#include "engine/wire.hpp"
#include "engine/worker_proc.hpp"
#include "telemetry/metrics.hpp"

namespace hayat::serve {

namespace {

using engine::ExperimentEngine;
using engine::ExperimentSpec;
using engine::RunResult;
using engine::WorkerEndpoint;

void count(const char* name, std::uint64_t n = 1) {
  telemetry::Registry::global().counter(name).add(n);
}

std::string canonicalRow(const RunResult& result) {
  std::ostringstream out;
  engine::writeRunResult(out, result);
  return out.str();
}

}  // namespace

// ------------------------------------------------------------- SpecRun

int SpecRun::completedTasks() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return done_;
}

bool SpecRun::complete() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return done_ == static_cast<int>(cells_.size());
}

bool SpecRun::failed() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return failed_;
}

std::string SpecRun::error() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  return error_;
}

std::optional<std::string> SpecRun::waitRow(int index, int timeoutMs) const {
  if (index < 0 || index >= taskCount()) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  std::unique_lock<std::mutex> lock(owner_->mutex_);
  const auto& cell = cells_[static_cast<std::size_t>(index)];
  while (cell.state != CellState::Done) {
    if (failed_ || abandoned_ || owner_->stopping_) return std::nullopt;
    if (owner_->rowCv_.wait_until(lock, deadline) ==
        std::cv_status::timeout)
      return std::nullopt;
  }
  return cell.row;
}

engine::SweepTable SpecRun::table() const {
  std::lock_guard<std::mutex> lock(owner_->mutex_);
  engine::SweepTable out;
  out.runs.reserve(cells_.size());
  for (const Cell& cell : cells_) out.runs.push_back(cell.result);
  return out;
}

// ------------------------------------------------------ SweepScheduler

SweepScheduler::SweepScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  cacheEnabled_ = config_.cache &&
                  std::getenv("HAYAT_NO_CACHE") == nullptr &&
                  std::getenv("HAYAT_NO_SWEEP_CACHE") == nullptr;
  cacheDir_ = config_.cacheDir;
  if (cacheDir_.empty()) {
    if (const char* env = std::getenv("HAYAT_CACHE_DIR"))
      if (*env) cacheDir_ = env;
    if (cacheDir_.empty()) cacheDir_ = "hayat_cache";
  }

  // One lane per endpoint slot; an empty dispatch spec means local
  // compute lanes only.
  if (!config_.dispatch.empty()) {
    for (const WorkerEndpoint& endpoint :
         engine::parseWorkerSpec(config_.dispatch)) {
      const int slots =
          endpoint.kind == WorkerEndpoint::Kind::Tcp ? 1 : endpoint.count;
      for (int i = 0; i < slots; ++i) {
        Lane lane;
        lane.remote = true;
        lane.endpoint = endpoint;
        lane.endpoint.count = 1;
        lanes_.push_back(std::move(lane));
      }
    }
  }
  if (lanes_.empty()) {
    const int n = std::max(1, config_.localWorkers);
    lanes_.resize(static_cast<std::size_t>(n));
  }
  threads_.reserve(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    threads_.emplace_back([this, i] { laneLoop(i); });
}

SweepScheduler::~SweepScheduler() { stop(); }

void SweepScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  workCv_.notify_all();
  rowCv_.notify_all();
  for (std::thread& t : threads_) t.join();
  for (Lane& lane : lanes_) {
    if (lane.fd >= 0)
      engine::writeMessage(lane.fd, engine::MsgType::Shutdown, "");
    killLane(lane);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

int SweepScheduler::backlog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int pending = inFlight_;
  for (const auto& run : active_)
    pending += static_cast<int>(run->pending_.size());
  return pending;
}

std::shared_ptr<SpecRun> SweepScheduler::attach(const ExperimentSpec& spec,
                                                int priority,
                                                const std::string& jobId) {
  const std::uint64_t hash = engine::specHash(spec);

  // Fast path: an existing run (live, completed, or abandoned) for this
  // hash — the job shares every task.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = runs_.find(hash);
    if (it != runs_.end() && !it->second->failed_) {
      const std::shared_ptr<SpecRun>& run = it->second;
      run->jobs_.insert(jobId);
      run->priority_ = std::max(run->priority_, priority);
      count("hayat_serve_shared_tasks_total",
            static_cast<std::uint64_t>(run->taskCount()));
      if (run->abandoned_) {
        // Resurrect: re-queue every cell the abandonment parked.
        run->abandoned_ = false;
        run->pending_.clear();
        for (std::size_t i = 0; i < run->cells_.size(); ++i)
          if (run->cells_[i].state == SpecRun::CellState::Pending)
            run->pending_.push_back(static_cast<int>(i));
        if (!run->pending_.empty() &&
            std::find(active_.begin(), active_.end(), run) == active_.end())
          active_.push_back(run);
        workCv_.notify_all();
      }
      return run;
    }
    if (it != runs_.end()) runs_.erase(it);  // failed: retry from scratch
  }

  // Slow path: build a new run.  The disk-cache probe does file I/O, so
  // it happens outside the lock; a concurrent attach of the same hash is
  // resolved by re-checking under the lock before publishing.
  auto run = std::shared_ptr<SpecRun>(new SpecRun(this));
  run->spec_ = spec;
  run->hash_ = hash;
  run->wirePayload_ = engine::encodeSpec(spec);
  run->tasks_ = ExperimentEngine().expand(spec);
  run->cells_.resize(run->tasks_.size());
  run->jobs_.insert(jobId);
  run->priority_ = priority;

  bool cached = false;
  if (cacheEnabled_) {
    if (auto table = engine::loadCachedTable(cacheDir_, spec)) {
      if (table->runs.size() == run->tasks_.size()) {
        for (std::size_t i = 0; i < table->runs.size(); ++i) {
          SpecRun::Cell& cell = run->cells_[i];
          cell.result = table->runs[i];
          cell.row = canonicalRow(cell.result);
          cell.state = SpecRun::CellState::Done;
        }
        run->done_ = run->taskCount();
        run->stored_ = true;  // it came from the cache; no need to restore
        cached = true;
      }
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(hash);
  if (it != runs_.end() && !it->second->failed_) {
    // Lost the race; join the winner.
    it->second->jobs_.insert(jobId);
    it->second->priority_ = std::max(it->second->priority_, priority);
    count("hayat_serve_shared_tasks_total",
          static_cast<std::uint64_t>(it->second->taskCount()));
    return it->second;
  }
  runs_[hash] = run;
  if (cached) {
    count("hayat_serve_table_cache_hits_total");
    count("hayat_serve_shared_tasks_total",
          static_cast<std::uint64_t>(run->taskCount()));
    rowCv_.notify_all();
  } else {
    for (int i = 0; i < run->taskCount(); ++i) run->pending_.push_back(i);
    active_.push_back(run);
    workCv_.notify_all();
  }
  return run;
}

void SweepScheduler::detach(const std::string& jobId,
                            const std::shared_ptr<SpecRun>& run) {
  if (!run) return;
  std::lock_guard<std::mutex> lock(mutex_);
  run->jobs_.erase(jobId);
  if (!run->jobs_.empty() ||
      run->done_ == static_cast<int>(run->cells_.size()))
    return;
  // Last job gone mid-run: park the pending tasks.  In-flight tasks are
  // allowed to finish (their results stay shareable); nothing new is
  // dispatched.
  run->abandoned_ = true;
  run->pending_.clear();
  active_.erase(std::remove(active_.begin(), active_.end(), run),
                active_.end());
  count("hayat_serve_runs_abandoned_total");
  rowCv_.notify_all();
}

bool SweepScheduler::nextWork(Work& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return false;
    // Highest priority level with pending work, round-robin inside it.
    int best = 0;
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const auto& run = active_[i];
      if (run->pending_.empty()) continue;
      if (eligible.empty() || run->priority_ > best) {
        if (!eligible.empty() && run->priority_ > best) eligible.clear();
        best = run->priority_;
        eligible.push_back(i);
      } else if (run->priority_ == best) {
        eligible.push_back(i);
      }
    }
    if (!eligible.empty()) {
      const std::size_t pick = eligible[rrCursor_++ % eligible.size()];
      const std::shared_ptr<SpecRun>& run = active_[pick];
      out.run = run;
      out.index = run->pending_.front();
      run->pending_.pop_front();
      run->cells_[static_cast<std::size_t>(out.index)].state =
          SpecRun::CellState::InFlight;
      ++inFlight_;
      if (run->pending_.empty())
        active_.erase(active_.begin() +
                      static_cast<std::ptrdiff_t>(pick));
      return true;
    }
    workCv_.wait(lock);
  }
}

void SweepScheduler::completeWork(const Work& work, bool ok,
                                  const RunResult& result,
                                  const std::string& error) {
  bool storeNow = false;
  engine::SweepTable table;
  ExperimentSpec spec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --inFlight_;
    SpecRun& run = *work.run;
    SpecRun::Cell& cell = run.cells_[static_cast<std::size_t>(work.index)];
    if (!ok) {
      // A task that fails even locally is deterministic: the whole run
      // fails loudly rather than hanging its jobs forever.
      run.failed_ = true;
      run.error_ = error;
      run.pending_.clear();
      active_.erase(std::remove(active_.begin(), active_.end(), work.run),
                    active_.end());
      count("hayat_serve_runs_failed_total");
      rowCv_.notify_all();
      return;
    }
    if (cell.state != SpecRun::CellState::Done) {
      cell.result = result;
      cell.row = canonicalRow(result);
      cell.state = SpecRun::CellState::Done;
      ++run.done_;
      count("hayat_serve_tasks_executed_total");
    }
    if (run.done_ == static_cast<int>(run.cells_.size()) && !run.stored_ &&
        cacheEnabled_ && !run.failed_) {
      run.stored_ = true;
      storeNow = true;
      spec = run.spec_;
      engine::SweepTable merged;
      merged.runs.reserve(run.cells_.size());
      for (const SpecRun::Cell& c : run.cells_)
        merged.runs.push_back(c.result);
      table = std::move(merged);
    }
    rowCv_.notify_all();
  }
  if (storeNow) {
    // File I/O outside the lock; the cache is shared with one-shot CLI
    // sweeps and future daemon incarnations.
    if (engine::storeCachedTable(cacheDir_, spec, table))
      count("hayat_serve_table_cache_stores_total");
  }
}

void SweepScheduler::laneLoop(std::size_t laneIdx) {
  Lane& lane = lanes_[laneIdx];
  Work work;
  while (nextWork(work)) {
    std::uint64_t hash = 0;
    std::string payload;
    engine::RunTask task;
    std::uint64_t populationSeed = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      hash = work.run->hash_;
      payload = work.run->wirePayload_;
      task = work.run->tasks_[static_cast<std::size_t>(work.index)];
      populationSeed = work.run->spec_.populationSeed;
    }

    RunResult storage;
    bool ok = false;
    std::string error;
    if (lane.remote && runRemote(lane, work, hash, payload, storage)) {
      ok = true;
      count("hayat_serve_tasks_remote_total");
    } else {
      try {
        storage = ExperimentEngine::runTask(task, populationSeed);
        ok = true;
        if (lane.remote) count("hayat_serve_tasks_local_fallback_total");
        count("hayat_serve_tasks_local_total");
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    completeWork(work, ok, storage, error);
    work.run.reset();
  }
}

bool SweepScheduler::ensureLane(Lane& lane) {
  if (lane.fd >= 0) return true;
  if (lane.deaths > config_.maxLaneRespawns) return false;
  lane.sentSpecs.clear();
  switch (lane.endpoint.kind) {
    case WorkerEndpoint::Kind::Fork:
      lane.pid = engine::spawnForkWorker(lane.fd);
      break;
    case WorkerEndpoint::Kind::Exec: {
      const char* bin = std::getenv("HAYAT_WORKER_BIN");
      lane.pid = engine::spawnExecWorker(bin && *bin ? bin : "hayat",
                                         lane.fd);
      break;
    }
    case WorkerEndpoint::Kind::Tcp:
      lane.fd = engine::connectTcpWorker(lane.endpoint.host,
                                         lane.endpoint.port, 2000);
      lane.pid = -1;
      break;
  }
  if (lane.fd < 0) {
    ++lane.deaths;
    return false;
  }
  if (lane.deaths > 0) count("hayat_serve_lane_respawns_total");
  return true;
}

void SweepScheduler::killLane(Lane& lane) {
  if (lane.fd >= 0) {
    ::close(lane.fd);
    lane.fd = -1;
  }
  if (lane.pid > 0) {
    ::kill(lane.pid, SIGKILL);
    int status = 0;
    ::waitpid(lane.pid, &status, 0);
    lane.pid = -1;
  }
}

bool SweepScheduler::runRemote(Lane& lane, const Work& work,
                               std::uint64_t hash,
                               const std::string& payload,
                               RunResult& storage) {
  if (!ensureLane(lane)) return false;
  const auto fail = [&] {
    killLane(lane);
    ++lane.deaths;
    count("hayat_serve_lane_deaths_total");
    return false;
  };
  if (lane.sentSpecs.find(hash) == lane.sentSpecs.end()) {
    if (!engine::writeMessage(lane.fd, engine::MsgType::Spec, payload))
      return fail();
    lane.sentSpecs.insert(hash);
  }
  if (!engine::writeMessage(lane.fd, engine::MsgType::Task,
                            engine::encodeTask(work.index, hash)))
    return fail();

  const int timeoutMs =
      std::max(1, static_cast<int>(config_.taskTimeoutSeconds * 1000.0));
  engine::Message msg;
  bool timedOut = false;
  if (!engine::readMessage(lane.fd, msg, timeoutMs, timedOut))
    return fail();
  if (msg.type == engine::MsgType::TaskError) return false;  // run locally
  if (msg.type != engine::MsgType::Result) return fail();
  int index = -1;
  try {
    engine::decodeResult(msg.payload, index, storage);
  } catch (const std::exception&) {
    return fail();
  }
  if (index != work.index) return fail();
  return true;
}

}  // namespace hayat::serve
