// Durable job queue for `hayat serve` (DESIGN.md §3.12).
//
// A job is one submitted ExperimentSpec plus scheduling metadata.  Every
// state transition is journaled as one file per job
// (`<dir>/<id>.job`, written tmp + atomic rename, same idiom as the
// result cache's pushed entries), so a SIGKILLed daemon replays the
// directory on restart and resumes every incomplete job: `queued` jobs
// are still queued, `running` jobs go back to `queued` (tasks are
// deterministic, so a rerun converges to byte-identical results —
// usually faster, since the shared result cache still holds any sweep
// that completed before the crash), and terminal jobs keep answering
// status queries.
//
// Admission control lives at submit(): a bounded total backlog and a
// per-client cap on active (queued + running) jobs.  Overflow is an
// explicit rejection the server maps to 429 — the queue never grows
// without bound and one client cannot starve the rest of the fleet.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace hayat::serve {

enum class JobState { Queued, Running, Completed, Cancelled, Failed };

const char* jobStateName(JobState state);
std::optional<JobState> jobStateFromName(const std::string& name);

/// One job: identity, scheduling metadata, and the submitted spec in its
/// canonical wire form (engine::encodeSpec) — the bytes that replay
/// re-decodes, so a restart runs exactly the spec the client sent.
struct JobRecord {
  std::string id;            ///< "j<seq>", assigned at submit
  std::uint64_t seq = 0;     ///< submission order, monotonic across restarts
  std::string client = "anon";
  int priority = 0;          ///< higher runs first; FIFO within a level
  JobState state = JobState::Queued;
  std::string specText;      ///< canonical spec payload (wire form)
  std::string specName;      ///< convenience copy of spec.name
  std::uint64_t specHash = 0;
  int taskCount = 0;
  std::string error;         ///< single line; Failed jobs only
};

/// Serialization used by the journal (exposed for tests): returns the
/// full file bytes / parses them, rejecting any malformed input.
std::string encodeJobRecord(const JobRecord& job);
bool decodeJobRecord(const std::string& bytes, JobRecord& out);

class JobQueue {
 public:
  struct Limits {
    int maxQueueDepth = 64;    ///< active jobs (queued + running) in total
    int maxClientActive = 8;   ///< active jobs per client id
  };

  enum class Admission { Accepted, QueueFull, ClientLimit };

  /// Opens (creating if needed) `dir` and replays every `*.job` file.
  /// Jobs that were `running` when the previous daemon died are demoted
  /// to `queued`; unreadable files are skipped with a warning (a torn
  /// write of the journal must not take the daemon down).
  JobQueue(std::string dir, Limits limits);
  explicit JobQueue(std::string dir) : JobQueue(std::move(dir), Limits{}) {}

  /// Admits `job` (assigning id and seq) and journals it, or rejects.
  Admission submit(JobRecord& job);

  std::optional<JobRecord> get(const std::string& id) const;
  std::vector<JobRecord> list() const;

  /// Transitions a job and journals the new state.  Returns false for an
  /// unknown id.  `error` is recorded on Failed.
  bool setState(const std::string& id, JobState state,
                const std::string& error = "");

  /// Removes a *terminal* job from the queue and deletes its journal
  /// file.  Returns false for unknown ids or active jobs.
  bool remove(const std::string& id);

  /// Queued jobs in scheduling order (priority desc, then seq asc) —
  /// what the server's job pump starts next, and the replay worklist
  /// right after construction.
  std::vector<JobRecord> queuedJobs() const;

  int activeCount() const;  ///< queued + running
  const std::string& dir() const { return dir_; }
  const Limits& limits() const { return limits_; }

 private:
  void persistLocked(const JobRecord& job);

  mutable std::mutex mutex_;
  std::string dir_;
  Limits limits_;
  std::vector<JobRecord> jobs_;  ///< seq order
  std::uint64_t nextSeq_ = 1;
};

}  // namespace hayat::serve
