// Minimal HTTP/1.x request parsing and response building for the
// `hayat serve` front door.
//
// The daemon shares one listening socket between framed wire traffic and
// HTTP (the §3.9 protocol sniff), so the HTTP side needs exactly enough
// of RFC 9112 to serve a job API safely: request line + headers +
// Content-Length body, hard size bounds on every piece, and a tri-state
// incremental parser so a connection handler can poll-read with a
// timeout and never block on a half-sent request.  The parser is a fuzz
// target (tests/test_serve.cpp throws truncations, bitflips, oversized
// headers, and garbage methods at it): any malformed input must come
// back `Bad` — the server answers 400 and closes — and no input may
// crash, hang, or allocate unboundedly.
//
// Deliberately out of scope: keep-alive (every response carries
// `Connection: close`), transfer-encoded request bodies, and multi-line
// header folding (obsolete since RFC 7230, rejected as Bad).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hayat::serve {

/// One parsed request.  Header names are lower-cased during parsing
/// (field names are case-insensitive); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   ///< e.g. "GET" (token chars, upper-cased by convention)
  std::string target;   ///< raw request target, e.g. "/jobs/j3?priority=2"
  std::string path;     ///< target up to the first '?'
  std::string query;    ///< target after the first '?' ("" when absent)
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lower-case), or "" when absent.
  std::string header(const std::string& name) const;
};

/// Parse outcome: `Ok` consumed one full request, `NeedMore` is a valid
/// prefix (read more bytes and retry), `Bad` can never become a request
/// no matter what arrives next (answer 400 and close).
enum class HttpParse { Ok, NeedMore, Bad };

/// Hard bounds; exceeding any of them is `Bad`, never `NeedMore` — an
/// attacker streaming an unbounded header line must be cut off, not
/// buffered.
struct HttpLimits {
  std::size_t maxHeadBytes = 16 * 1024;      ///< request line + headers
  std::size_t maxBodyBytes = 4 * 1024 * 1024;  ///< Content-Length bound
};

/// Parses one request from the front of `data`.  On `Ok`, `consumed` is
/// the byte count of the request (head + body) and `out` is fully
/// populated; on `NeedMore`/`Bad` `consumed` is 0 and `error` (on Bad)
/// says why.  Accepts both CRLF and bare-LF line endings (curl and the
/// tests use CRLF; lenient reading costs nothing and loses nothing).
HttpParse parseHttpRequest(std::string_view data, HttpRequest& out,
                           std::size_t& consumed, std::string& error,
                           const HttpLimits& limits = {});

/// Reason phrase for the handful of statuses the serve API uses.
std::string httpStatusText(int status);

/// Full fixed-length response: status line, Content-Type/-Length,
/// `Connection: close`, optional extra headers, body.
std::string httpResponse(
    int status, const std::string& contentType, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extraHeaders = {});

/// Head of a chunked streaming response (`Transfer-Encoding: chunked`).
/// Follow with httpChunk() per payload piece and httpChunkEnd() once
/// complete; closing the socket *without* the end marker tells the
/// client the stream was truncated (the cancel path does this on
/// purpose).
std::string httpChunkedHead(int status, const std::string& contentType);

/// One chunk frame (empty input returns "" — an empty chunk would read
/// as end-of-stream).
std::string httpChunk(std::string_view data);

/// The terminating zero chunk.
std::string httpChunkEnd();

/// Decodes a chunked body incrementally: appends any complete chunks at
/// the front of `buffer` to `out` (one string per chunk, preserving the
/// server's row-per-chunk framing) and erases the consumed bytes.
/// Returns false on malformed framing; `done` is set once the zero
/// chunk is consumed.
bool decodeChunks(std::string& buffer, std::vector<std::string>& out,
                  bool& done);

/// Splits a query string ("a=1&b=2") into decoded key/value pairs; no
/// %-unescaping (the job API uses plain tokens only).
std::vector<std::pair<std::string, std::string>> parseQuery(
    const std::string& query);

}  // namespace hayat::serve
