#include "serve/job_queue.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/metrics.hpp"

namespace hayat::serve {

namespace {

constexpr const char* kMagic = "# hayat-job v1";

void countJob(const char* name) {
  telemetry::Registry::global().counter(name).add();
}

/// One key=value line; the value may not contain newlines (the error
/// field is sanitized before it gets here).
std::string line(const char* key, const std::string& value) {
  return std::string(key) + '=' + value + '\n';
}

bool readKv(std::istream& in, const char* key, std::string& value) {
  std::string text;
  if (!std::getline(in, text)) return false;
  const std::string prefix = std::string(key) + '=';
  if (text.compare(0, prefix.size(), prefix) != 0) return false;
  value = text.substr(prefix.size());
  return true;
}

std::string sanitizeLine(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

}  // namespace

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "unknown";
}

std::optional<JobState> jobStateFromName(const std::string& name) {
  for (const JobState s :
       {JobState::Queued, JobState::Running, JobState::Completed,
        JobState::Cancelled, JobState::Failed})
    if (name == jobStateName(s)) return s;
  return std::nullopt;
}

std::string encodeJobRecord(const JobRecord& job) {
  std::ostringstream out;
  char hash[20];
  std::snprintf(hash, sizeof(hash), "%016" PRIx64, job.specHash);
  out << kMagic << '\n'
      << line("id", job.id) << line("seq", std::to_string(job.seq))
      << line("client", sanitizeLine(job.client))
      << line("priority", std::to_string(job.priority))
      << line("state", jobStateName(job.state))
      << line("name", sanitizeLine(job.specName)) << line("hash", hash)
      << line("tasks", std::to_string(job.taskCount))
      << line("error", sanitizeLine(job.error))
      << line("spec", std::to_string(job.specText.size())) << job.specText;
  return out.str();
}

bool decodeJobRecord(const std::string& bytes, JobRecord& out) {
  std::istringstream in(bytes);
  std::string text;
  if (!std::getline(in, text) || text != kMagic) return false;
  std::string seq, priority, state, hash, tasks, specLen;
  if (!readKv(in, "id", out.id) || !readKv(in, "seq", seq) ||
      !readKv(in, "client", out.client) ||
      !readKv(in, "priority", priority) || !readKv(in, "state", state) ||
      !readKv(in, "name", out.specName) || !readKv(in, "hash", hash) ||
      !readKv(in, "tasks", tasks) || !readKv(in, "error", out.error) ||
      !readKv(in, "spec", specLen))
    return false;
  try {
    out.seq = std::stoull(seq);
    out.priority = std::stoi(priority);
    out.specHash = std::stoull(hash, nullptr, 16);
    out.taskCount = std::stoi(tasks);
    const std::size_t len = std::stoull(specLen);
    const std::streampos pos = in.tellg();
    if (pos < 0) return false;
    const auto offset = static_cast<std::size_t>(pos);
    if (bytes.size() - offset != len) return false;
    out.specText = bytes.substr(offset, len);
  } catch (const std::exception&) {
    return false;
  }
  const auto parsed = jobStateFromName(state);
  if (!parsed || out.id.empty()) return false;
  out.state = *parsed;
  return true;
}

JobQueue::JobQueue(std::string dir, Limits limits)
    : dir_(std::move(dir)), limits_(limits) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);

  // Replay: one file per job, any order on disk; sort by seq afterwards
  // so queuedJobs() preserves submission order within a priority level.
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != ".job")
      continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    JobRecord job;
    if (!in || !decodeJobRecord(bytes.str(), job)) {
      std::fprintf(stderr, "[serve] skipping unreadable job file %s\n",
                   entry.path().string().c_str());
      countJob("hayat_serve_journal_skipped_total");
      continue;
    }
    // The daemon that was running this job is gone; its tasks are
    // deterministic, so re-queue and rerun.
    if (job.state == JobState::Running) {
      job.state = JobState::Queued;
      countJob("hayat_serve_jobs_recovered_total");
    }
    nextSeq_ = std::max(nextSeq_, job.seq + 1);
    jobs_.push_back(std::move(job));
  }
  std::sort(jobs_.begin(), jobs_.end(), [](const JobRecord& a,
                                            const JobRecord& b) {
    return a.seq < b.seq;
  });
  // Re-journal recovered jobs so a crash during replay does not forget
  // the demotion.
  std::lock_guard<std::mutex> lock(mutex_);
  for (const JobRecord& job : jobs_)
    if (job.state == JobState::Queued) persistLocked(job);
}

void JobQueue::persistLocked(const JobRecord& job) {
  const std::string path = dir_ + "/" + job.id + ".job";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[serve] cannot journal %s\n", path.c_str());
      return;
    }
    out << encodeJobRecord(job);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::fprintf(stderr, "[serve] cannot commit journal %s: %s\n",
                 path.c_str(), ec.message().c_str());
    std::filesystem::remove(tmp, ec);
  }
}

JobQueue::Admission JobQueue::submit(JobRecord& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  int active = 0;
  int clientActive = 0;
  for (const JobRecord& j : jobs_) {
    if (j.state != JobState::Queued && j.state != JobState::Running)
      continue;
    ++active;
    if (j.client == job.client) ++clientActive;
  }
  if (active >= limits_.maxQueueDepth) {
    countJob("hayat_serve_jobs_rejected_total");
    return Admission::QueueFull;
  }
  if (clientActive >= limits_.maxClientActive) {
    countJob("hayat_serve_jobs_rejected_total");
    return Admission::ClientLimit;
  }
  job.seq = nextSeq_++;
  job.id = "j" + std::to_string(job.seq);
  job.state = JobState::Queued;
  jobs_.push_back(job);
  persistLocked(job);
  countJob("hayat_serve_jobs_submitted_total");
  return Admission::Accepted;
}

std::optional<JobRecord> JobQueue::get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const JobRecord& j : jobs_)
    if (j.id == id) return j;
  return std::nullopt;
}

std::vector<JobRecord> JobQueue::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_;
}

bool JobQueue::setState(const std::string& id, JobState state,
                        const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (JobRecord& j : jobs_) {
    if (j.id != id) continue;
    j.state = state;
    if (state == JobState::Failed) j.error = error;
    persistLocked(j);
    return true;
  }
  return false;
}

bool JobQueue::remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (it->id != id) continue;
    if (it->state == JobState::Queued || it->state == JobState::Running)
      return false;
    std::error_code ec;
    std::filesystem::remove(dir_ + "/" + it->id + ".job", ec);
    jobs_.erase(it);
    return true;
  }
  return false;
}

std::vector<JobRecord> JobQueue::queuedJobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobRecord> out;
  for (const JobRecord& j : jobs_)
    if (j.state == JobState::Queued) out.push_back(j);
  std::stable_sort(out.begin(), out.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     if (a.priority != b.priority)
                       return a.priority > b.priority;
                     return a.seq < b.seq;
                   });
  return out;
}

int JobQueue::activeCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int active = 0;
  for (const JobRecord& j : jobs_)
    if (j.state == JobState::Queued || j.state == JobState::Running)
      ++active;
  return active;
}

}  // namespace hayat::serve
