#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace hayat::serve {

namespace {

bool isTokenChar(char c) {
  // RFC 9110 token characters; enough to reject control bytes, spaces,
  // and separators in methods and header names.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// Finds the next line ending at or after `pos`: returns the line (sans
/// terminator) and advances `pos` past it.  Accepts "\r\n" and "\n".
bool nextLine(std::string_view data, std::size_t& pos,
              std::string_view& line) {
  const std::size_t nl = data.find('\n', pos);
  if (nl == std::string_view::npos) return false;
  std::size_t end = nl;
  if (end > pos && data[end - 1] == '\r') --end;
  line = data.substr(pos, end - pos);
  pos = nl + 1;
  return true;
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers)
    if (key == name) return value;
  return "";
}

HttpParse parseHttpRequest(std::string_view data, HttpRequest& out,
                           std::size_t& consumed, std::string& error,
                           const HttpLimits& limits) {
  consumed = 0;
  error.clear();
  out = HttpRequest{};

  // Locate the end of the head: the first blank line, i.e. a line
  // terminator immediately followed by another ("\n\n" or "\n\r\n",
  // which also covers "\r\n\r\n").  An unterminated head is NeedMore
  // only while it could still fit inside the bound.
  std::size_t headEnd = std::string_view::npos;
  for (std::size_t nl = data.find('\n'); nl != std::string_view::npos;
       nl = data.find('\n', nl + 1)) {
    if (nl + 1 < data.size() && data[nl + 1] == '\n') {
      headEnd = nl + 2;
      break;
    }
    if (nl + 2 < data.size() && data[nl + 1] == '\r' &&
        data[nl + 2] == '\n') {
      headEnd = nl + 3;
      break;
    }
  }
  if (headEnd == std::string_view::npos) {
    if (data.size() > limits.maxHeadBytes) {
      error = "request head exceeds " + std::to_string(limits.maxHeadBytes) +
              " bytes";
      return HttpParse::Bad;
    }
    return HttpParse::NeedMore;
  }
  if (headEnd > limits.maxHeadBytes) {
    error = "request head exceeds " + std::to_string(limits.maxHeadBytes) +
            " bytes";
    return HttpParse::Bad;
  }

  const std::string_view head = data.substr(0, headEnd);
  std::size_t pos = 0;
  std::string_view line;
  if (!nextLine(head, pos, line) || line.empty()) {
    error = "missing request line";
    return HttpParse::Bad;
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    error = "malformed request line";
    return HttpParse::Bad;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16 ||
      !std::all_of(method.begin(), method.end(), isTokenChar)) {
    error = "malformed method";
    return HttpParse::Bad;
  }
  if (target.empty() || target.size() > 8 * 1024 ||
      std::any_of(target.begin(), target.end(), [](char c) {
        return static_cast<unsigned char>(c) <= ' ' ||
               static_cast<unsigned char>(c) == 0x7f;
      })) {
    error = "malformed request target";
    return HttpParse::Bad;
  }
  if (version != "HTTP/1.0" && version != "HTTP/1.1") {
    error = "unsupported HTTP version";
    return HttpParse::Bad;
  }

  out.method = std::string(method);
  out.target = std::string(target);
  out.version = std::string(version);
  const std::size_t qm = out.target.find('?');
  out.path = out.target.substr(0, qm);
  out.query = qm == std::string::npos ? "" : out.target.substr(qm + 1);

  // Header lines until the blank terminator.
  while (nextLine(head, pos, line)) {
    if (line.empty()) break;
    if (line.front() == ' ' || line.front() == '\t') {
      error = "obsolete header folding";
      return HttpParse::Bad;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      error = "malformed header line";
      return HttpParse::Bad;
    }
    const std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), isTokenChar)) {
      error = "malformed header name";
      return HttpParse::Bad;
    }
    out.headers.emplace_back(toLower(name),
                             std::string(trim(line.substr(colon + 1))));
  }

  // Body: Content-Length only.  A request body with Transfer-Encoding is
  // out of scope and rejected loudly.
  if (!out.header("transfer-encoding").empty()) {
    error = "transfer-encoded request bodies are not supported";
    return HttpParse::Bad;
  }
  std::size_t bodyLen = 0;
  const std::string lenText = out.header("content-length");
  if (!lenText.empty()) {
    if (lenText.size() > 12 ||
        !std::all_of(lenText.begin(), lenText.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c));
        })) {
      error = "malformed Content-Length";
      return HttpParse::Bad;
    }
    bodyLen = static_cast<std::size_t>(std::stoull(lenText));
    if (bodyLen > limits.maxBodyBytes) {
      error = "request body exceeds " + std::to_string(limits.maxBodyBytes) +
              " bytes";
      return HttpParse::Bad;
    }
  }
  if (data.size() - headEnd < bodyLen) return HttpParse::NeedMore;
  out.body = std::string(data.substr(headEnd, bodyLen));
  consumed = headEnd + bodyLen;
  return HttpParse::Ok;
}

std::string httpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string httpResponse(
    int status, const std::string& contentType, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extraHeaders) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << ' ' << httpStatusText(status) << "\r\n"
      << "Content-Type: " << contentType << "\r\n"
      << "Content-Length: " << body.size() << "\r\n";
  for (const auto& [name, value] : extraHeaders)
    out << name << ": " << value << "\r\n";
  out << "Connection: close\r\n\r\n" << body;
  return out.str();
}

std::string httpChunkedHead(int status, const std::string& contentType) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << ' ' << httpStatusText(status) << "\r\n"
      << "Content-Type: " << contentType << "\r\n"
      << "Transfer-Encoding: chunked\r\n"
      << "Connection: close\r\n\r\n";
  return out.str();
}

std::string httpChunk(std::string_view data) {
  if (data.empty()) return "";
  std::ostringstream out;
  out << std::hex << data.size() << "\r\n";
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out << "\r\n";
  return out.str();
}

std::string httpChunkEnd() { return "0\r\n\r\n"; }

bool decodeChunks(std::string& buffer, std::vector<std::string>& out,
                  bool& done) {
  done = false;
  for (;;) {
    const std::size_t nl = buffer.find("\r\n");
    if (nl == std::string::npos)
      return buffer.size() <= 18;  // a size line is at most 16 hex digits
    const std::string sizeLine = buffer.substr(0, nl);
    if (sizeLine.empty() || sizeLine.size() > 16 ||
        !std::all_of(sizeLine.begin(), sizeLine.end(), [](char c) {
          return std::isxdigit(static_cast<unsigned char>(c));
        }))
      return false;
    const std::size_t size = std::stoull(sizeLine, nullptr, 16);
    if (size > (1u << 28)) return false;  // no sane row is 256 MB
    if (size == 0) {
      // Terminating chunk: "0\r\n\r\n" (no trailers supported).
      if (buffer.size() < nl + 4) return true;  // wait for the blank line
      if (buffer.compare(nl, 4, "\r\n\r\n") != 0) return false;
      buffer.erase(0, nl + 4);
      done = true;
      return true;
    }
    if (buffer.size() < nl + 2 + size + 2) return true;  // chunk incomplete
    if (buffer.compare(nl + 2 + size, 2, "\r\n") != 0) return false;
    out.push_back(buffer.substr(nl + 2, size));
    buffer.erase(0, nl + 2 + size + 2);
  }
}

std::vector<std::pair<std::string, std::string>> parseQuery(
    const std::string& query) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t amp = query.find('&', start);
    if (amp == std::string::npos) amp = query.size();
    const std::string item = query.substr(start, amp - start);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos)
        out.emplace_back(item, "");
      else
        out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
    start = amp + 1;
  }
  return out;
}

}  // namespace hayat::serve
