#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <sstream>

#include "engine/wire.hpp"
#include "engine/worker_proc.hpp"
#include "telemetry/metrics.hpp"

namespace hayat::serve {

namespace {

using std::chrono::steady_clock;

void count(const char* name, std::uint64_t n = 1) {
  telemetry::Registry::global().counter(name).add(n);
}

telemetry::Histogram& jobLatencyHistogram() {
  return telemetry::Registry::global().histogram(
      "hayat_serve_job_latency_seconds",
      {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0});
}

bool writeAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string hex16(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

/// Status body shared by POST /jobs, GET /jobs/<id>, and DELETE — the
/// key=value lines `hayat job status` re-parses.
std::string jobStatusBody(const JobRecord& job, int completed) {
  std::ostringstream out;
  out << "id=" << job.id << '\n'
      << "state=" << jobStateName(job.state) << '\n'
      << "name=" << job.specName << '\n'
      << "hash=" << hex16(job.specHash) << '\n'
      << "tasks=" << job.taskCount << '\n'
      << "completed=" << completed << '\n'
      << "priority=" << job.priority << '\n'
      << "client=" << job.client << '\n';
  if (!job.error.empty()) out << "error=" << job.error << '\n';
  return out.str();
}

std::string queryValue(const HttpRequest& req, const std::string& key) {
  for (const auto& [k, v] : parseQuery(req.query))
    if (k == key) return v;
  return "";
}

}  // namespace

ServeServer::ServeServer(ServeConfig config)
    : config_(config), queue_(config.queueDir, config.limits) {
  SchedulerConfig sched;
  sched.dispatch = config_.dispatch;
  sched.localWorkers = config_.localWorkers;
  sched.cache = config_.cache;
  sched.cacheDir = config_.cacheDir;
  sched.taskTimeoutSeconds = config_.taskTimeoutSeconds;
  scheduler_ = std::make_unique<SweepScheduler>(sched);
}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start() {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listenFd_, 64) < 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  started_ = true;
  acceptThread_ = std::thread([this] { acceptLoop(); });
  pumpThread_ = std::thread([this] { pumpLoop(); });
  return true;
}

void ServeServer::beginDrain() {
  draining_.store(true);
  count("hayat_serve_drains_total");
}

void ServeServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(connsMutex_);
    for (const auto& conn : conns_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  if (pumpThread_.joinable()) pumpThread_.join();
  pruneConnections(/*joinAll=*/true);
  scheduler_->stop();
}

void ServeServer::pruneConnections(bool joinAll) {
  std::lock_guard<std::mutex> lock(connsMutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (joinAll || (*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServeServer::acceptLoop() {
  // Snapshot the fd: stop() rewrites the member (unsynchronized with
  // this thread); the shutdown/close is what makes accept() fail below.
  const int listenFd = listenFd_;
  while (!stopping_.load()) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop) or broken
    }
    pruneConnections(/*joinAll=*/false);
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->fd = fd;
    raw->thread = std::thread([this, raw] {
      handleConnection(raw->fd);
      raw->done.store(true);
    });
    std::lock_guard<std::mutex> lock(connsMutex_);
    conns_.push_back(std::move(conn));
  }
}

void ServeServer::pumpLoop() {
  auto& depthGauge =
      telemetry::Registry::global().gauge("hayat_serve_queue_depth");
  auto& backlogGauge =
      telemetry::Registry::global().gauge("hayat_serve_backlog_tasks");
  auto& runningGauge =
      telemetry::Registry::global().gauge("hayat_serve_jobs_running");
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    depthGauge.set(queue_.activeCount());
    backlogGauge.set(scheduler_->backlog());

    std::lock_guard<std::mutex> lock(runningMutex_);
    // Retire finished runs.
    for (auto it = running_.begin(); it != running_.end();) {
      const std::string& id = it->first;
      RunningJob& info = it->second;
      if (info.run->failed()) {
        queue_.setState(id, JobState::Failed, info.run->error());
        scheduler_->detach(id, info.run);
        count("hayat_serve_jobs_failed_total");
        it = running_.erase(it);
      } else if (info.run->complete()) {
        queue_.setState(id, JobState::Completed);
        const double seconds =
            std::chrono::duration<double>(steady_clock::now() -
                                          info.started)
                .count();
        jobLatencyHistogram().observe(seconds);
        scheduler_->detach(id, info.run);
        count("hayat_serve_jobs_completed_total");
        it = running_.erase(it);
      } else {
        ++it;
      }
    }
    admitLocked();
    runningGauge.set(static_cast<double>(running_.size()));
  }
}

void ServeServer::admitLocked() {
  if (static_cast<int>(running_.size()) >= config_.maxRunningJobs) return;
  for (const JobRecord& job : queue_.queuedJobs()) {
    if (static_cast<int>(running_.size()) >= config_.maxRunningJobs) break;
    if (running_.find(job.id) != running_.end()) continue;
    engine::ExperimentSpec spec;
    try {
      spec = engine::decodeSpec(job.specText);
    } catch (const std::exception& e) {
      // A journaled spec that no longer decodes (e.g. a wire-format
      // change across a restart) fails loudly instead of wedging the
      // queue.
      queue_.setState(job.id, JobState::Failed, e.what());
      count("hayat_serve_jobs_failed_total");
      continue;
    }
    RunningJob info;
    info.run = scheduler_->attach(spec, job.priority, job.id);
    info.started = steady_clock::now();
    queue_.setState(job.id, JobState::Running);
    running_.emplace(job.id, std::move(info));
    count("hayat_serve_jobs_started_total");
  }
}

bool ServeServer::authorized(const HttpRequest& req) const {
  if (config_.authToken.empty()) return true;
  return req.header("authorization") == "Bearer " + config_.authToken;
}

void ServeServer::handleConnection(int fd) {
  // Protocol sniff: this socket also fields stray wire-protocol dials
  // ('H' 'W' magic).  They get counted and closed — the serve front door
  // is HTTP; workers are dialed by the scheduler, not the reverse.
  char peek[2] = {0, 0};
  struct pollfd pfd = {fd, POLLIN, 0};
  ssize_t got = 0;
  const auto sniffDeadline =
      steady_clock::now() + std::chrono::milliseconds(5000);
  while (got < 2) {
    if (::poll(&pfd, 1, 250) <= 0) {
      if (errno == EINTR) continue;
      if (stopping_.load() || steady_clock::now() > sniffDeadline) {
        ::close(fd);
        return;
      }
      continue;
    }
    got = ::recv(fd, peek, sizeof(peek), MSG_PEEK);
    if (got == 0 || (got < 0 && errno != EINTR && errno != EAGAIN)) {
      ::close(fd);
      return;
    }
    if (got < 0) got = 0;
  }
  if (peek[0] == 'H' && peek[1] == 'W') {
    count("hayat_serve_wire_rejected_total");
    ::close(fd);
    return;
  }

  // Incremental request read: poll in short slices so stop() is never
  // blocked behind a slow client, with a hard deadline for the request.
  std::string buffer;
  HttpRequest req;
  const auto deadline = steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    std::size_t consumed = 0;
    std::string error;
    const HttpParse st = parseHttpRequest(buffer, req, consumed, error);
    if (st == HttpParse::Ok) break;
    if (st == HttpParse::Bad) {
      count("hayat_serve_http_bad_requests_total");
      writeAll(fd, httpResponse(400, "text/plain", error + "\n"));
      ::close(fd);
      return;
    }
    if (stopping_.load() || steady_clock::now() > deadline) {
      writeAll(fd, httpResponse(408, "text/plain", "request timeout\n"));
      ::close(fd);
      return;
    }
    if (::poll(&pfd, 1, 250) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      ::close(fd);  // client went away mid-request
      return;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      ::close(fd);
      return;
    }
    buffer.append(buf, static_cast<std::size_t>(n));
  }

  route(req, fd);
  ::close(fd);
}

void ServeServer::route(const HttpRequest& req, int fd) {
  count("hayat_serve_http_requests_total");

  if (req.path == "/healthz") {
    writeAll(fd, httpResponse(200, "text/plain", "ok\n"));
    return;
  }
  if (req.path == "/metrics") {
    if (req.method != "GET") {
      writeAll(fd, httpResponse(405, "text/plain", "method not allowed\n"));
      return;
    }
    // Same Prometheus document a `hayat worker --listen` serves: the
    // process registry plus any merged fleet counters.
    writeAll(fd, engine::workerMetricsHttpResponse("/metrics"));
    return;
  }

  if (req.path != "/jobs" && req.path.compare(0, 6, "/jobs/") != 0) {
    writeAll(fd, httpResponse(404, "text/plain", "not found\n"));
    return;
  }
  if (!authorized(req)) {
    count("hayat_serve_auth_failures_total");
    writeAll(fd, httpResponse(401, "text/plain", "unauthorized\n",
                              {{"WWW-Authenticate", "Bearer"}}));
    return;
  }

  if (req.path == "/jobs") {
    if (req.method == "POST") {
      if (draining_.load() || stopping_.load()) {
        writeAll(fd, httpResponse(503, "text/plain", "draining\n"));
        return;
      }
      JobRecord job;
      try {
        const engine::ExperimentSpec spec = engine::decodeSpec(req.body);
        job.specText = engine::encodeSpec(spec);
        job.specName = spec.name;
        job.specHash = engine::specHash(spec);
        job.taskCount = spec.taskCount();
      } catch (const std::exception& e) {
        writeAll(fd, httpResponse(400, "text/plain",
                                  std::string("bad spec: ") + e.what() +
                                      "\n"));
        return;
      }
      const std::string client = req.header("x-client");
      if (!client.empty()) job.client = client;
      const std::string prio = queryValue(req, "priority");
      if (!prio.empty()) job.priority = std::atoi(prio.c_str());
      switch (queue_.submit(job)) {
        case JobQueue::Admission::Accepted:
          writeAll(fd, httpResponse(201, "text/plain",
                                    jobStatusBody(job, 0)));
          return;
        case JobQueue::Admission::QueueFull:
          writeAll(fd, httpResponse(429, "text/plain", "queue full\n"));
          return;
        case JobQueue::Admission::ClientLimit:
          writeAll(fd, httpResponse(429, "text/plain",
                                    "client job limit reached\n"));
          return;
      }
      return;
    }
    if (req.method == "GET") {
      std::ostringstream out;
      for (const JobRecord& job : queue_.list()) {
        int completed = 0;
        if (job.state == JobState::Completed) {
          completed = job.taskCount;
        } else if (job.state == JobState::Running) {
          std::lock_guard<std::mutex> lock(runningMutex_);
          const auto it = running_.find(job.id);
          if (it != running_.end())
            completed = it->second.run->completedTasks();
        }
        out << job.id << ' ' << jobStateName(job.state) << ' ' << completed
            << '/' << job.taskCount << ' ' << job.priority << ' '
            << job.client << ' ' << job.specName << '\n';
      }
      writeAll(fd, httpResponse(200, "text/plain", out.str()));
      return;
    }
    writeAll(fd, httpResponse(405, "text/plain", "method not allowed\n"));
    return;
  }

  // /jobs/<id> and /jobs/<id>/results
  std::string id = req.path.substr(6);
  bool wantResults = false;
  const std::string suffix = "/results";
  if (id.size() > suffix.size() &&
      id.compare(id.size() - suffix.size(), suffix.size(), suffix) == 0) {
    wantResults = true;
    id.resize(id.size() - suffix.size());
  }
  const auto job = queue_.get(id);
  if (!job) {
    writeAll(fd, httpResponse(404, "text/plain", "no such job\n"));
    return;
  }

  if (wantResults) {
    if (req.method != "GET") {
      writeAll(fd, httpResponse(405, "text/plain", "method not allowed\n"));
      return;
    }
    streamResults(id, fd);
    return;
  }

  if (req.method == "GET") {
    int completed = 0;
    if (job->state == JobState::Completed) {
      completed = job->taskCount;
    } else if (job->state == JobState::Running) {
      std::lock_guard<std::mutex> lock(runningMutex_);
      const auto it = running_.find(id);
      if (it != running_.end())
        completed = it->second.run->completedTasks();
    }
    writeAll(fd, httpResponse(200, "text/plain",
                              jobStatusBody(*job, completed)));
    return;
  }
  if (req.method == "DELETE") {
    std::lock_guard<std::mutex> lock(runningMutex_);
    const auto fresh = queue_.get(id);
    if (!fresh) {
      writeAll(fd, httpResponse(404, "text/plain", "no such job\n"));
      return;
    }
    if (fresh->state != JobState::Queued &&
        fresh->state != JobState::Running) {
      writeAll(fd, httpResponse(409, "text/plain",
                                std::string("job already ") +
                                    jobStateName(fresh->state) + "\n"));
      return;
    }
    queue_.setState(id, JobState::Cancelled);
    const auto it = running_.find(id);
    if (it != running_.end()) {
      scheduler_->detach(id, it->second.run);
      running_.erase(it);
    }
    count("hayat_serve_jobs_cancelled_total");
    JobRecord cancelled = *fresh;
    cancelled.state = JobState::Cancelled;
    writeAll(fd, httpResponse(200, "text/plain",
                              jobStatusBody(cancelled, 0)));
    return;
  }
  writeAll(fd, httpResponse(405, "text/plain", "method not allowed\n"));
}

void ServeServer::streamResults(const std::string& id, int fd) {
  // Wait out the queued phase; the pump owns admission order.
  std::optional<JobRecord> job;
  for (;;) {
    job = queue_.get(id);
    if (!job) {
      writeAll(fd, httpResponse(404, "text/plain", "no such job\n"));
      return;
    }
    if (job->state != JobState::Queued) break;
    if (stopping_.load()) {
      writeAll(fd, httpResponse(503, "text/plain", "shutting down\n"));
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (job->state == JobState::Failed) {
    writeAll(fd, httpResponse(500, "text/plain", job->error + "\n"));
    return;
  }
  if (job->state == JobState::Cancelled) {
    writeAll(fd, httpResponse(410, "text/plain", "job cancelled\n"));
    return;
  }

  // Running: share the live run.  Completed (possibly in a previous
  // daemon incarnation): attach a stream-scoped reference — normally an
  // instant result-cache hit, and a deterministic recompute when the
  // cache was evicted.  Either way the bytes are identical.
  std::shared_ptr<SpecRun> run;
  std::string streamJobId;
  {
    std::lock_guard<std::mutex> lock(runningMutex_);
    const auto it = running_.find(id);
    if (it != running_.end()) run = it->second.run;
  }
  if (!run) {
    try {
      const engine::ExperimentSpec spec = engine::decodeSpec(job->specText);
      streamJobId = "stream-" + id + "-" +
                    std::to_string(streamSeq_.fetch_add(1));
      run = scheduler_->attach(spec, job->priority, streamJobId);
    } catch (const std::exception& e) {
      writeAll(fd, httpResponse(500, "text/plain",
                                std::string(e.what()) + "\n"));
      return;
    }
  }

  count("hayat_serve_streams_total");
  bool ok = writeAll(fd, httpChunkedHead(200, "text/plain"));
  const int tasks = run->taskCount();
  for (int i = 0; ok && i < tasks; ++i) {
    for (;;) {
      const auto row = run->waitRow(i, 250);
      if (row) {
        ok = writeAll(fd, httpChunk(*row));
        break;
      }
      // No row yet: distinguish "still computing" from "never coming".
      if (stopping_.load() || run->failed()) {
        ok = false;
        break;
      }
      const auto fresh = queue_.get(id);
      if (!fresh || fresh->state == JobState::Cancelled ||
          fresh->state == JobState::Failed) {
        ok = false;  // close without the zero chunk: truncated stream
        break;
      }
    }
  }
  if (ok) {
    writeAll(fd, httpChunkEnd());
  } else {
    count("hayat_serve_streams_truncated_total");
  }
  if (!streamJobId.empty()) scheduler_->detach(streamJobId, run);
}

namespace {
volatile std::sig_atomic_t gServeSignal = 0;
void onServeSignal(int) { gServeSignal = 1; }
}  // namespace

int serveMain(const ServeConfig& config) {
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, onServeSignal);
  std::signal(SIGINT, onServeSignal);

  ServeServer server(config);
  if (!server.start()) {
    std::fprintf(stderr, "[serve] cannot bind port %d\n", config.port);
    return 1;
  }
  std::fprintf(stderr,
               "[serve] listening on port %d (queue %s, %d lanes%s)\n",
               server.port(), config.queueDir.c_str(),
               server.scheduler().laneCount(),
               config.authToken.empty() ? "" : ", auth on");
  while (gServeSignal == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::fprintf(stderr, "[serve] drain: %d active jobs\n",
               server.activeJobs());
  server.beginDrain();
  gServeSignal = 0;  // a second signal aborts the drain
  while (server.activeJobs() > 0 && gServeSignal == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  std::fprintf(stderr, "[serve] stopped\n");
  return 0;
}

}  // namespace hayat::serve
