#include "serve/http_client.hpp"

#include <poll.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <sstream>

#include "common/error.hpp"
#include "engine/worker_proc.hpp"
#include "serve/http.hpp"

namespace hayat::serve {

namespace {

bool writeAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads once with a poll timeout; returns -1 on error/timeout, 0 on
/// EOF, else the byte count.
ssize_t readTimed(int fd, char* buf, std::size_t cap, int timeoutMs) {
  struct pollfd pfd = {fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeoutMs);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return -1;
  ssize_t n;
  do {
    n = ::read(fd, buf, cap);
  } while (n < 0 && errno == EINTR);
  return n;
}

std::string buildRequest(
    const std::string& host, const std::string& method,
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::ostringstream out;
  out << method << ' ' << target << " HTTP/1.1\r\n"
      << "Host: " << host << "\r\n";
  for (const auto& [name, value] : headers)
    out << name << ": " << value << "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT")
    out << "Content-Length: " << body.size() << "\r\n";
  out << "Connection: close\r\n\r\n" << body;
  return out.str();
}

/// Parses a response head in `buffer` (status line + headers).  Returns
/// false while incomplete, throws nothing; `bad` flags a malformed head.
bool parseResponseHead(const std::string& buffer, HttpClientResponse& out,
                       std::size_t& headEnd, bool& bad) {
  bad = false;
  headEnd = buffer.find("\r\n\r\n");
  std::size_t skip = 4;
  if (headEnd == std::string::npos) {
    headEnd = buffer.find("\n\n");
    skip = 2;
  }
  if (headEnd == std::string::npos) {
    if (buffer.size() > 64 * 1024) bad = true;
    return false;
  }
  headEnd += skip;

  std::istringstream head(buffer.substr(0, headEnd));
  std::string line;
  if (!std::getline(head, line)) {
    bad = true;
    return false;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  // "HTTP/1.1 200 OK"
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos || line.compare(0, 5, "HTTP/") != 0) {
    bad = true;
    return false;
  }
  out.status = std::atoi(line.c_str() + sp + 1);
  if (out.status < 100 || out.status > 599) {
    bad = true;
    return false;
  }
  out.headers.clear();
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    std::size_t vs = colon + 1;
    while (vs < line.size() && (line[vs] == ' ' || line[vs] == '\t')) ++vs;
    out.headers.emplace_back(name, line.substr(vs));
  }
  return true;
}

}  // namespace

std::string HttpClientResponse::header(const std::string& name) const {
  for (const auto& [key, value] : headers)
    if (key == name) return value;
  return "";
}

bool httpRequest(const std::string& host, int port, const std::string& method,
                 const std::string& target, const std::string& body,
                 const std::vector<std::pair<std::string, std::string>>&
                     headers,
                 HttpClientResponse& out, int timeoutMs) {
  out = HttpClientResponse{};
  const int fd = engine::connectTcpWorker(host, port, timeoutMs);
  if (fd < 0) return false;
  bool ok = writeAll(fd, buildRequest(host, method, target, body, headers));

  std::string buffer;
  std::size_t headEnd = 0;
  bool haveHead = false;
  bool chunked = false;
  char buf[4096];
  while (ok) {
    const ssize_t n = readTimed(fd, buf, sizeof(buf), timeoutMs);
    if (n < 0) {
      ok = false;
      break;
    }
    if (n > 0) buffer.append(buf, static_cast<std::size_t>(n));
    if (!haveHead) {
      bool bad = false;
      if (parseResponseHead(buffer, out, headEnd, bad)) {
        haveHead = true;
        chunked = out.header("transfer-encoding") == "chunked";
      } else if (bad) {
        ok = false;
        break;
      }
    }
    if (n == 0) break;  // EOF: Connection: close delimits the body
  }
  ::close(fd);
  if (!ok || !haveHead) return false;

  std::string raw = buffer.substr(headEnd);
  if (chunked) {
    std::vector<std::string> chunks;
    bool done = false;
    if (!decodeChunks(raw, chunks, done) || !done) return false;
    for (const std::string& c : chunks) out.body += c;
  } else {
    out.body = std::move(raw);
    const std::string lenText = out.header("content-length");
    if (!lenText.empty() &&
        out.body.size() != std::stoull(lenText))
      return false;
  }
  return true;
}

bool httpStream(const std::string& host, int port, const std::string& target,
                const std::vector<std::pair<std::string, std::string>>&
                    headers,
                const std::function<bool(const std::string&)>& onChunk,
                int& statusOut, int idleTimeoutMs) {
  statusOut = 0;
  const int fd = engine::connectTcpWorker(host, port, 10000);
  if (fd < 0) return false;
  bool ok = writeAll(fd, buildRequest(host, "GET", target, "", headers));

  HttpClientResponse head;
  std::string buffer;
  std::size_t headEnd = 0;
  bool haveHead = false;
  bool chunked = false;
  bool done = false;
  bool aborted = false;
  char buf[4096];
  while (ok && !done && !aborted) {
    const ssize_t n = readTimed(fd, buf, sizeof(buf), idleTimeoutMs);
    if (n < 0) {
      ok = false;
      break;
    }
    if (n > 0) buffer.append(buf, static_cast<std::size_t>(n));
    if (!haveHead) {
      bool bad = false;
      if (parseResponseHead(buffer, head, headEnd, bad)) {
        haveHead = true;
        statusOut = head.status;
        chunked = head.header("transfer-encoding") == "chunked";
        buffer.erase(0, headEnd);
        if (head.status != 200) {
          ::close(fd);
          return true;  // HTTP-level error, no stream to consume
        }
        if (!chunked) {
          ok = false;  // the results endpoint always streams
          break;
        }
      } else if (bad) {
        ok = false;
        break;
      }
    }
    if (haveHead) {
      std::vector<std::string> chunks;
      if (!decodeChunks(buffer, chunks, done)) {
        ok = false;
        break;
      }
      for (const std::string& c : chunks) {
        if (!onChunk(c)) {
          aborted = true;
          break;
        }
      }
    }
    if (n == 0) break;  // EOF
  }
  ::close(fd);
  if (aborted) return true;
  return ok && haveHead && done;
}

void parseHostPort(const std::string& text, std::string& host, int& port) {
  const std::size_t colon = text.rfind(':');
  HAYAT_REQUIRE(colon != std::string::npos && colon > 0 &&
                    colon + 1 < text.size(),
                "expected host:port, got '" + text + "'");
  host = text.substr(0, colon);
  port = std::atoi(text.c_str() + colon + 1);
  HAYAT_REQUIRE(port > 0 && port < 65536, "bad port in '" + text + "'");
}

}  // namespace hayat::serve
