// Multi-job sweep scheduler for `hayat serve` (DESIGN.md §3.12).
//
// The one-shot engine runs one spec to completion and exits; the
// scheduler runs *many* specs concurrently on one worker fleet and one
// result cache:
//
//   - Deduplication.  Execution is keyed by spec hash (a SpecRun).  Two
//     jobs submitting the same spec attach to the same SpecRun — the
//     second job's tasks are served entirely from the first's results
//     (in flight or finished), never recomputed.  Completed SpecRuns are
//     stored in the engine's on-disk result cache, and a new SpecRun
//     first tries to load from it — so serve jobs, one-shot CLI sweeps,
//     and restarts after a crash all share one cache.
//   - Fair interleaving.  Lanes pick tasks from the highest-priority
//     SpecRun level with work pending and round-robin across the runs
//     inside it, so a 10,000-task job cannot starve a 4-task job at the
//     same priority, and a higher-priority job overtakes both.
//   - One fleet.  A lane is either a local worker thread or one remote
//     worker process (proc:/exec:/tcp:, the §3.6 endpoints).  Remote
//     lanes speak the wire protocol; since v5 a worker keeps every spec
//     it has been sent (keyed by hash), so one connection interleaves
//     tasks from all concurrent jobs.  A lane whose worker dies is
//     respawned with a bounded budget and degrades to local execution —
//     the dispatcher's "a sweep never fails because a fleet did"
//     contract, carried over.
//
// Determinism contract: every cell of a SpecRun holds the canonical
// writeRunResult record of its task, so the concatenation of rows 0..n-1
// is byte-identical to a serial one-shot run of the same spec no matter
// which lanes computed which tasks, in which order, for which jobs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/dispatcher.hpp"
#include "engine/engine.hpp"

namespace hayat::serve {

struct SchedulerConfig {
  /// Worker fleet: "" runs tasks on `localWorkers` in-process lanes;
  /// otherwise a §3.6 endpoint list ("proc:2", "tcp:host:port", ...) —
  /// one lane per endpoint slot.
  std::string dispatch;
  int localWorkers = 2;
  bool cache = true;          ///< consult/store the on-disk result cache
  std::string cacheDir;       ///< "" resolves like the engine (env, default)
  double taskTimeoutSeconds = 300.0;  ///< remote result wait per task
  int maxLaneRespawns = 3;    ///< worker deaths tolerated per lane
};

class SweepScheduler;

/// One deduplicated execution of a spec.  All mutable state is guarded
/// by the owning scheduler's mutex; the public observers take it.
class SpecRun {
 public:
  const engine::ExperimentSpec& spec() const { return spec_; }
  std::uint64_t hash() const { return hash_; }
  int taskCount() const { return static_cast<int>(tasks_.size()); }

  int completedTasks() const;
  bool complete() const;
  bool failed() const;
  std::string error() const;

  /// Blocks until row `index` (the canonical writeRunResult record) is
  /// available, the run fails or is abandoned (nullopt), or `timeoutMs`
  /// elapses (nullopt).
  std::optional<std::string> waitRow(int index, int timeoutMs) const;

  /// The merged table; valid once complete().
  engine::SweepTable table() const;

 private:
  friend class SweepScheduler;

  enum class CellState { Pending, InFlight, Done };
  struct Cell {
    CellState state = CellState::Pending;
    std::string row;            ///< canonical record once Done
    engine::RunResult result;
  };

  explicit SpecRun(SweepScheduler* owner) : owner_(owner) {}

  SweepScheduler* owner_;
  engine::ExperimentSpec spec_;
  std::uint64_t hash_ = 0;
  std::string wirePayload_;     ///< encodeSpec(spec), sent to remote lanes
  std::vector<engine::RunTask> tasks_;
  std::vector<Cell> cells_;
  std::deque<int> pending_;     ///< indices not yet handed to a lane
  std::set<std::string> jobs_;  ///< attached job ids
  int priority_ = 0;            ///< max over attached jobs
  int done_ = 0;
  bool failed_ = false;
  bool abandoned_ = false;      ///< every job detached before completion
  bool stored_ = false;         ///< written to the on-disk result cache
  std::string error_;
};

class SweepScheduler {
 public:
  explicit SweepScheduler(SchedulerConfig config);
  ~SweepScheduler();

  SweepScheduler(const SweepScheduler&) = delete;
  SweepScheduler& operator=(const SweepScheduler&) = delete;

  /// Attaches a job to the (new or existing) SpecRun for `spec`.  A
  /// fresh run consults the on-disk result cache first; an existing or
  /// cached run bumps the shared-task telemetry counters — the "two
  /// clients, one computation" path.
  std::shared_ptr<SpecRun> attach(const engine::ExperimentSpec& spec,
                                  int priority, const std::string& jobId);

  /// Detaches a job (cancel / terminal cleanup).  A run with no jobs
  /// left stops dispatching pending tasks; in-flight tasks finish and
  /// their results are kept for a possible future attach.
  void detach(const std::string& jobId,
              const std::shared_ptr<SpecRun>& run);

  /// Stops lanes (joining their threads) and shuts remote workers down.
  /// Idempotent; the destructor calls it.
  void stop();

  const SchedulerConfig& config() const { return config_; }
  int laneCount() const { return static_cast<int>(lanes_.size()); }

  /// Tasks currently pending or in flight across all runs (the
  /// queue-depth gauge's source).
  int backlog() const;

 private:
  friend class SpecRun;

  struct Lane {
    bool remote = false;
    engine::WorkerEndpoint endpoint;
    int fd = -1;
    pid_t pid = -1;
    int deaths = 0;
    std::set<std::uint64_t> sentSpecs;
  };

  struct Work {
    std::shared_ptr<SpecRun> run;
    int index = -1;
  };

  void laneLoop(std::size_t laneIdx);
  bool nextWork(Work& out);
  void completeWork(const Work& work, bool ok,
                    const engine::RunResult& result,
                    const std::string& error);
  bool runRemote(Lane& lane, const Work& work, std::uint64_t hash,
                 const std::string& payload, engine::RunResult& storage);
  bool ensureLane(Lane& lane);
  void killLane(Lane& lane);

  SchedulerConfig config_;
  bool cacheEnabled_ = true;
  std::string cacheDir_;

  mutable std::mutex mutex_;
  std::condition_variable workCv_;          ///< lanes wait for work
  mutable std::condition_variable rowCv_;   ///< row/status waiters
  bool stopping_ = false;

  std::map<std::uint64_t, std::shared_ptr<SpecRun>> runs_;
  std::vector<std::shared_ptr<SpecRun>> active_;  ///< runs with pending work
  std::size_t rrCursor_ = 0;
  int inFlight_ = 0;

  std::vector<Lane> lanes_;
  std::vector<std::thread> threads_;
  bool stopped_ = false;
};

}  // namespace hayat::serve
