#include "engine/engine.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "engine/builtin_policies.hpp"
#include "engine/dispatcher.hpp"
#include "engine/result_cache.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/series.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace hayat::engine {

namespace {

bool cacheDisabledByEnv() {
  return std::getenv("HAYAT_NO_CACHE") != nullptr ||
         std::getenv("HAYAT_NO_SWEEP_CACHE") != nullptr;
}

/// Feeds every epoch of every run into the telemetry epoch series.
/// Recording from the merged table (rather than inside the simulator)
/// covers the local, distributed, and cache-hit paths with one code
/// path, and keeps the series identical no matter which executed.
void recordSweepSeries(const SweepTable& table) {
  for (const RunResult& r : table.runs) {
    for (std::size_t i = 0; i < r.lifetime.epochs.size(); ++i) {
      const EpochRecord& e = r.lifetime.epochs[i];
      telemetry::EpochRow row;
      row.chip = r.chip;
      row.repetition = r.repetition;
      row.darkFraction = r.darkFraction;
      row.policy = r.policy;
      row.epochIndex = static_cast<int>(i);
      row.startYear = e.startYear;
      row.chipPeakK = e.chipPeak;
      row.chipTimeAverageK = e.chipTimeAverage;
      row.minHealth = e.minHealth;
      row.averageHealth = e.averageHealth;
      row.chipFmaxHz = e.chipFmax;
      row.averageFmaxHz = e.averageFmax;
      row.dtmEvents = e.dtmEvents;
      row.migrations = e.migrations;
      row.throttles = e.throttles;
      row.throttledSteps = e.throttledSteps;
      row.totalSteps = e.totalSteps;
      row.throughputRatio = e.throughputRatio;
      telemetry::EpochSeries::global().append(std::move(row));
    }
  }
}

bool hasTcpEndpoint(const std::vector<WorkerEndpoint>& endpoints) {
  for (const WorkerEndpoint& e : endpoints)
    if (e.kind == WorkerEndpoint::Kind::Tcp) return true;
  return false;
}

/// Pushes the on-disk cache entry for `spec` to every live TCP worker of
/// an already-connected dispatcher (warm-cache push; fork/exec workers
/// share the coordinator's filesystem and are skipped inside
/// pushCacheEntry).  Best-effort: an unreadable file is a silent no-op.
void pushCacheEntryToWorkers(Dispatcher& dispatcher, const std::string& dir,
                             const ExperimentSpec& spec) {
  std::ifstream in(cachePath(dir, spec), std::ios::binary);
  if (!in) return;
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const int sent =
      dispatcher.pushCacheEntry(spec.name, specHash(spec), bytes.str());
  if (sent > 0)
    std::fprintf(stderr, "[engine] %s: pushed cache entry to %d worker%s\n",
                 spec.name.c_str(), sent, sent == 1 ? "" : "s");
}

}  // namespace

double RunResult::throughputRatio() const {
  if (lifetime.epochs.empty()) return 1.0;
  double acc = 0.0;
  for (const EpochRecord& e : lifetime.epochs) acc += e.throughputRatio;
  return acc / static_cast<double>(lifetime.epochs.size());
}

std::vector<const RunResult*> SweepTable::select(const std::string& policy,
                                                 double darkFraction) const {
  std::vector<const RunResult*> out;
  for (const RunResult& r : runs)
    if (r.policy == policy && std::abs(r.darkFraction - darkFraction) < 1e-9)
      out.push_back(&r);
  return out;
}

double SweepTable::aggregateRatio(double darkFraction,
                                  double (*metric)(const RunResult&),
                                  const std::string& numerator,
                                  const std::string& denominator) const {
  double num = 0.0, den = 0.0;
  for (const RunResult& r : runs) {
    if (std::abs(r.darkFraction - darkFraction) > 1e-9) continue;
    if (r.policy == numerator)
      num += metric(r);
    else if (r.policy == denominator)
      den += metric(r);
  }
  HAYAT_REQUIRE(den != 0.0,
                "denominator aggregate metric is zero; cannot normalize");
  return num / den;
}

ExperimentEngine::ExperimentEngine(EngineConfig config)
    : config_(std::move(config)) {
  registerBuiltinPolicies();
  // Benches/examples opt into telemetry via the environment; the CLI
  // configures explicitly before constructing an engine (that call wins,
  // configureFromEnv is a no-op without HAYAT_TELEMETRY).
  telemetry::configureFromEnv("engine");
}

int ExperimentEngine::workers() const {
  return config_.workers > 0 ? config_.workers : defaultWorkerCount();
}

bool ExperimentEngine::cacheEnabled() const {
  return config_.cache && !cacheDisabledByEnv();
}

std::string ExperimentEngine::cacheDir() const {
  if (!config_.cacheDir.empty()) return config_.cacheDir;
  if (const char* env = std::getenv("HAYAT_CACHE_DIR"))
    if (*env) return env;
  return "hayat_cache";
}

std::string ExperimentEngine::dispatchSpec() const {
  if (!config_.dispatch.empty()) return config_.dispatch;
  if (const char* env = std::getenv("HAYAT_DISPATCH"))
    if (*env) return env;
  return "";
}

std::uint64_t ExperimentEngine::cacheMaxBytes() const {
  if (config_.cacheMaxBytes > 0) return config_.cacheMaxBytes;
  if (const char* env = std::getenv("HAYAT_CACHE_MAX_BYTES"))
    if (*env) return std::strtoull(env, nullptr, 10);
  return 0;
}

double ExperimentEngine::cacheMaxAgeSeconds() const {
  if (config_.cacheMaxAgeSeconds >= 0.0) return config_.cacheMaxAgeSeconds;
  if (const char* env = std::getenv("HAYAT_CACHE_MAX_AGE"))
    if (*env) return std::strtod(env, nullptr);
  return -1.0;
}

std::vector<RunTask> ExperimentEngine::expand(
    const ExperimentSpec& spec) const {
  HAYAT_REQUIRE(!spec.chips.empty(), "spec has no chips");
  HAYAT_REQUIRE(!spec.darkFractions.empty(), "spec has no dark fractions");
  HAYAT_REQUIRE(!spec.policies.empty(), "spec has no policies");
  HAYAT_REQUIRE(spec.repetitions >= 1, "spec needs >= 1 repetition");
  // Validate the sweep-wide prune knob up front so a malformed string
  // fails loudly before any task runs; radius 0 means exact.
  (void)parsePolicyPrune(spec.policyPrune);

  std::vector<RunTask> tasks;
  tasks.reserve(static_cast<std::size_t>(spec.taskCount()));
  for (const int chip : spec.chips) {
    for (const double dark : spec.darkFractions) {
      for (const PolicySpec& policy : spec.policies) {
        for (int rep = 0; rep < spec.repetitions; ++rep) {
          RunTask task;
          task.index = static_cast<int>(tasks.size());
          task.chip = chip;
          task.repetition = rep;
          task.darkFraction = dark;
          // The sweep-wide prune knob reaches Hayat-family policies as a
          // policy param (so it ships to workers inside the task and
          // shows up in the result label); an explicit per-policy
          // pruneRadius param wins.  Consumers selecting by label use
          // the same effectiveTaskPolicy rule.
          task.policy = effectiveTaskPolicy(spec, policy);
          task.system = spec.system;
          task.system.epoch.thermalSensorSeed = deriveSeed(
              spec.baseSeed, chip, rep, SeedStream::ThermalSensor);
          task.lifetime = spec.lifetime;
          task.lifetime.minDarkFraction = dark;
          task.lifetime.workloadSeed =
              deriveSeed(spec.baseSeed, chip, rep, SeedStream::Workload);
          task.lifetime.sensorSeed =
              deriveSeed(spec.baseSeed, chip, rep, SeedStream::HealthSensor);
          task.lifetime.failure.seed =
              deriveSeed(spec.baseSeed, chip, rep, SeedStream::Failure);
          tasks.push_back(std::move(task));
        }
      }
    }
  }
  return tasks;
}

RunResult ExperimentEngine::runTask(const RunTask& task,
                                    std::uint64_t populationSeed) {
  registerBuiltinPolicies();
  System system = System::create(task.system, populationSeed, task.chip);
  const std::unique_ptr<MappingPolicy> policy =
      PolicyRegistry::global().make(task.policy);

  RunResult result;
  result.chip = task.chip;
  result.repetition = task.repetition;
  result.darkFraction = task.darkFraction;
  result.policy = task.policy.label();
  result.ambient = task.system.thermal.ambient;
  result.lifetime = LifetimeSimulator(task.lifetime).run(system, *policy);
  return result;
}

RunResult ExperimentEngine::runWithPolicy(System& system,
                                          const LifetimeConfig& config,
                                          MappingPolicy& policy, int chip,
                                          int repetition) {
  RunResult result;
  result.chip = chip;
  result.repetition = repetition;
  result.darkFraction = config.minDarkFraction;
  result.policy = policy.name();
  result.ambient = system.config().thermal.ambient;
  result.lifetime = LifetimeSimulator(config).run(system, policy);
  return result;
}

SweepTable ExperimentEngine::run(const ExperimentSpec& spec) const {
  const telemetry::Span runSpan("engine.run");
  if (telemetry::enabled()) {
    static telemetry::Counter& runs =
        telemetry::Registry::global().counter("hayat_engine_runs_total");
    runs.add();
  }

  // Endpoint syntax errors are loud, and deliberately precede the cache
  // check — a typo'd topology must not be masked by a cache hit.
  const std::string dispatch = dispatchSpec();
  std::vector<WorkerEndpoint> endpoints;
  if (!dispatch.empty()) endpoints = parseWorkerSpec(dispatch);

  // A fixed mix is not canonically hashed (experiment.cpp), so such specs
  // always recompute.
  const bool cacheable = cacheEnabled() && !spec.lifetime.fixedMix.has_value();
  if (cacheable) {
    if (auto cached = loadCachedTable(cacheDir(), spec)) {
      std::fprintf(stderr, "[engine] %s: loaded %zu runs from %s\n",
                   spec.name.c_str(), cached->runs.size(),
                   cachePath(cacheDir(), spec).c_str());
      if (hasTcpEndpoint(endpoints)) {
        // Warm-cache push: the local hit costs the remote fleet nothing,
        // so spend a connection warming every TCP worker's cache — the
        // entry this coordinator would otherwise recompute for them.
        DispatchConfig dc;
        dc.endpoints = endpoints;
        Dispatcher dispatcher(dc);
        if (dispatcher.connect(spec) > 0)
          pushCacheEntryToWorkers(dispatcher, cacheDir(), spec);
        dispatcher.shutdown();
      }
      if (telemetry::enabled()) recordSweepSeries(*cached);
      return *std::move(cached);
    }
  }

  const std::vector<RunTask> tasks = expand(spec);
  if (telemetry::enabled()) {
    static telemetry::Counter& expanded =
        telemetry::Registry::global().counter("hayat_engine_tasks_total");
    expanded.add(tasks.size());
  }
  SweepTable table;

  bool dispatched = false;
  std::unique_ptr<Dispatcher> dispatcher;
  if (!endpoints.empty() && !spec.lifetime.fixedMix.has_value()) {
    // An unreachable fleet degrades to the in-process pool below.
    DispatchConfig dc;
    dc.endpoints = endpoints;
    dc.localFallbackWorkers = workers();
    dispatcher = std::make_unique<Dispatcher>(dc);
    if (dispatcher->connect(spec) > 0) {
      table.runs = dispatcher->run(spec, tasks);
      dispatched = true;
    } else {
      std::fprintf(stderr,
                   "[engine] %s: no workers reachable for '%s'; falling "
                   "back to in-process threads\n",
                   spec.name.c_str(), dispatch.c_str());
      dispatcher.reset();
    }
  }
  if (!dispatched) {
    dispatcher.reset();
    table.runs = parallelMap<RunResult>(
        static_cast<int>(tasks.size()), workers(), [&](int i) {
          return runTask(tasks[static_cast<std::size_t>(i)],
                         spec.populationSeed);
        });
  }

  if (cacheable) {
    storeCachedTable(cacheDir(), spec, table);
    // The workers that just computed the table get its cache entry back,
    // so a coordinator restart against the same fleet starts warm even
    // if this host's cache directory is lost.
    if (dispatcher) pushCacheEntryToWorkers(*dispatcher, cacheDir(), spec);
    const std::uint64_t maxBytes = cacheMaxBytes();
    const double maxAge = cacheMaxAgeSeconds();
    if (maxBytes > 0 || maxAge >= 0.0) {
      const CacheEvictionStats ev =
          evictResultCache(cacheDir(), maxBytes, maxAge);
      if (ev.evictedByAge + ev.evictedBySize > 0) {
        std::fprintf(stderr,
                     "[engine] cache eviction: dropped %" PRIu64
                     " entries (%" PRIu64 " by age, %" PRIu64
                     " by size), %" PRIu64 " bytes\n",
                     ev.evictedByAge + ev.evictedBySize, ev.evictedByAge,
                     ev.evictedBySize, ev.evictedBytes);
      }
    }
  }
  if (telemetry::enabled()) recordSweepSeries(table);
  return table;
}

}  // namespace hayat::engine
