// Worker side of the distributed ExperimentEngine.
//
// A worker is a stateless task server: it receives one ExperimentSpec,
// re-expands it into RunTasks (expansion is deterministic, so the spec
// hash is the complete work-partitioning key), then answers Task messages
// with Result messages until it is shut down or its connection closes.
// Workers never *compute into* the result cache — but they do accept
// CachePush frames (wire.hpp): the coordinator pushes entries it already
// has into each remote worker's cache directory, so a restarted fleet
// does not recompute sweeps its coordinator can answer from disk.
//
// Three transports, all speaking the same wire protocol (wire.hpp):
//   - fork:  spawnForkWorker() forks the current process; the child runs
//            runWorkerLoop() over a socketpair.  Used by `--workers=proc:N`.
//   - exec:  spawnExecWorker() fork/execs a `hayat worker --stdio`
//            process.  Used by `--workers=exec:N` (HAYAT_WORKER_BIN
//            selects the binary, default "hayat" from PATH).
//   - tcp:   `hayat worker --listen PORT` serves coordinators that dial
//            in with `--workers=tcp:host:port`.  The same listen socket
//            doubles as a plain-HTTP endpoint: a connection that opens
//            with an HTTP method token is answered with Prometheus text
//            for GET /metrics (404 for other targets, 405 for other
//            methods) and closed — `curl host:port/metrics`
//            scrapes a live worker with no extra port.
//
// Test hooks (fault injection for the crash-recovery tests; unset in
// normal operation):
//   HAYAT_WORKER_EXIT_AFTER=N   _exit(42) after serving N results
//   HAYAT_WORKER_STALL_AFTER=N  hang forever instead of serving task N+1
//   HAYAT_FAULT_PLAN + HAYAT_FAULT_WORKER  the richer schedule grammar
//     (fault.hpp): delay:worker=W,ms=M / die:worker=W,after=K /
//     stall:worker=W,after=K address the worker spawned into slot W.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace hayat::engine {

/// Serves one coordinator connection: reads the Spec, then loops over
/// Task messages until Shutdown or EOF.  Returns a process exit code.
int runWorkerLoop(int inFd, int outFd);

/// Forks a worker child running runWorkerLoop over a socketpair; the
/// child closes every fd in `closeInChild` first (sibling workers'
/// sockets, so their EOFs stay observable) and clears any inherited
/// coordinator-side fault plan.  `slot >= 0` is exported to the child as
/// HAYAT_FAULT_WORKER so worker-addressed fault rules find it.  Returns
/// the child pid and stores the coordinator-side fd, or returns -1.
pid_t spawnForkWorker(int& fd, const std::vector<int>& closeInChild = {},
                      int slot = -1);

/// Fork/execs `binary worker --stdio` with the socketpair on its
/// stdin/stdout (HAYAT_FAULT_WORKER=slot in its environment when
/// `slot >= 0`).  Returns the child pid and stores the coordinator-side
/// fd, or returns -1 (a missing binary surfaces as an immediate child
/// exit, i.e. a worker death).
pid_t spawnExecWorker(const std::string& binary, int& fd, int slot = -1);

/// Serves connections one at a time on an already-listening socket (used
/// by the TCP worker and the tests): wire-protocol coordinators run the
/// worker loop, "GET "-prefixed connections get one HTTP response (see
/// workerMetricsHttpResponse) and are closed.  Returns when accept
/// fails, e.g. when the socket is closed.
int serveWorkerOnListenSocket(int listenFd);

/// Full HTTP/1.0 response for a request target: /metrics gets a 200
/// whose body is this process's live Prometheus text (including any
/// merged worker counters/histograms), everything else a 404.  The
/// request counter hayat_worker_metrics_requests_total advances even
/// with telemetry disabled, so a scrape is never an empty document.
std::string workerMetricsHttpResponse(const std::string& target);

/// The HTTP envelope around `body` (status 200, 404, or 405; Prometheus
/// text/plain version 0.0.4 content type on 200, an Allow: GET header on
/// 405).  Split out so the exact bytes are golden-testable with a fixed
/// body.
std::string workerHttpResponse(int status, const std::string& body);

/// `hayat worker --stdio`: serves the coordinator on stdin/stdout.
/// Stray stdout writes from library code would corrupt the protocol, so
/// fd 1 is re-pointed at stderr for the duration.
int workerServeStdio();

/// `hayat worker --listen PORT`: binds (port 0 picks an ephemeral port,
/// printed to stderr), then serves coordinators until interrupted.
int workerListenTcp(int port);

/// Connects to a `hayat worker --listen` endpoint; returns the socket fd
/// or -1 if the worker is unreachable within `timeoutMs`.
int connectTcpWorker(const std::string& host, int port, int timeoutMs);

}  // namespace hayat::engine
