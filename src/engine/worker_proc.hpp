// Worker side of the distributed ExperimentEngine.
//
// A worker is a stateless task server: it receives one ExperimentSpec,
// re-expands it into RunTasks (expansion is deterministic, so the spec
// hash is the complete work-partitioning key), then answers Task messages
// with Result messages until it is shut down or its connection closes.
// Workers never touch the result cache — caching is coordinator-side
// only, so a worker host needs no shared filesystem.
//
// Three transports, all speaking the same wire protocol (wire.hpp):
//   - fork:  spawnForkWorker() forks the current process; the child runs
//            runWorkerLoop() over a socketpair.  Used by `--workers=proc:N`.
//   - exec:  spawnExecWorker() fork/execs a `hayat worker --stdio`
//            process.  Used by `--workers=exec:N` (HAYAT_WORKER_BIN
//            selects the binary, default "hayat" from PATH).
//   - tcp:   `hayat worker --listen PORT` serves coordinators that dial
//            in with `--workers=tcp:host:port`.
//
// Test hooks (fault injection for the crash-recovery tests; unset in
// normal operation):
//   HAYAT_WORKER_EXIT_AFTER=N   _exit(42) after serving N results
//   HAYAT_WORKER_STALL_AFTER=N  hang forever instead of serving task N+1
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace hayat::engine {

/// Serves one coordinator connection: reads the Spec, then loops over
/// Task messages until Shutdown or EOF.  Returns a process exit code.
int runWorkerLoop(int inFd, int outFd);

/// Forks a worker child running runWorkerLoop over a socketpair; the
/// child closes every fd in `closeInChild` first (sibling workers'
/// sockets, so their EOFs stay observable).  Returns the child pid and
/// stores the coordinator-side fd, or returns -1.
pid_t spawnForkWorker(int& fd, const std::vector<int>& closeInChild = {});

/// Fork/execs `binary worker --stdio` with the socketpair on its
/// stdin/stdout.  Returns the child pid and stores the coordinator-side
/// fd, or returns -1 (a missing binary surfaces as an immediate child
/// exit, i.e. a worker death).
pid_t spawnExecWorker(const std::string& binary, int& fd);

/// Serves coordinator connections one at a time on an already-listening
/// socket (used by the TCP worker and the tests).  Returns when accept
/// fails, e.g. when the socket is closed.
int serveWorkerOnListenSocket(int listenFd);

/// `hayat worker --stdio`: serves the coordinator on stdin/stdout.
/// Stray stdout writes from library code would corrupt the protocol, so
/// fd 1 is re-pointed at stderr for the duration.
int workerServeStdio();

/// `hayat worker --listen PORT`: binds (port 0 picks an ephemeral port,
/// printed to stderr), then serves coordinators until interrupted.
int workerListenTcp(int port);

/// Connects to a `hayat worker --listen` endpoint; returns the socket fd
/// or -1 if the worker is unreachable within `timeoutMs`.
int connectTcpWorker(const std::string& host, int port, int timeoutMs);

}  // namespace hayat::engine
