// Registration of the repo's concrete policies with the PolicyRegistry.
//
// The registry interface lives in src/runtime (next to MappingPolicy) and
// knows no concrete policy; the engine layer, which already links
// hayat_core and hayat_baselines, performs the registration.  Explicit
// registration (instead of static-initializer tricks) keeps the factories
// alive across static-library boundaries.
#pragma once

namespace hayat::engine {

/// Registers the builtin factories with PolicyRegistry::global().
/// Idempotent and thread-safe; the engine calls it on construction, so
/// user code only needs it when talking to the registry directly.
///
/// Registered names and their recognized parameters:
///   "Hayat"        earlyAlphaGHz, earlyBeta, lateAlphaGHz, lateBeta,
///                  wmax, lateAgingOnset, dutyPolicy (0 Generic, 1 Known,
///                  2 WorstCase), leakageIterations, wearGamma
///   "VAA"          availabilityRadius, seed
///   "Random"       seed
///   "CoolestFirst" (none)
///   "Exhaustive"   maxAssignments, dutyPolicy
void registerBuiltinPolicies();

}  // namespace hayat::engine
