#include "engine/worker_proc.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "engine/builtin_policies.hpp"
#include "engine/engine.hpp"
#include "engine/wire.hpp"
#include "telemetry/metrics.hpp"

namespace hayat::engine {

namespace {

long envLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return (value && *value) ? std::atol(value) : fallback;
}

/// Worker writes race coordinator deaths; losing that race must be an
/// EPIPE error, not a fatal SIGPIPE.
void ignoreSigpipe() {
  struct sigaction sa;
  if (::sigaction(SIGPIPE, nullptr, &sa) == 0 && sa.sa_handler == SIG_DFL) {
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  }
}

}  // namespace

int runWorkerLoop(int inFd, int outFd) {
  ignoreSigpipe();
  registerBuiltinPolicies();

  Message msg;
  if (!readMessage(inFd, msg) || msg.type != MsgType::Spec) return 1;
  ExperimentSpec spec;
  try {
    spec = decodeSpec(msg.payload);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[worker %d] bad spec: %s\n", ::getpid(), e.what());
    return 1;
  }
  const std::vector<RunTask> tasks = ExperimentEngine().expand(spec);
  const std::uint64_t hash = specHash(spec);

  const long exitAfter = envLong("HAYAT_WORKER_EXIT_AFTER", -1);
  const long stallAfter = envLong("HAYAT_WORKER_STALL_AFTER", -1);
  long served = 0;

  // Counter values already reported to the coordinator; Result frames
  // carry only what advanced since (telemetry::encodeCounterDeltas).
  std::map<std::string, std::uint64_t> reported;
  if (telemetry::enabled()) {
    // Fork workers inherit the coordinator's counter values wholesale;
    // baseline them so only this process's work is reported as deltas.
    telemetry::encodeCounterDeltas(reported);
  }

  while (readMessage(inFd, msg)) {
    if (msg.type == MsgType::Shutdown) return 0;
    if (msg.type == MsgType::TelemetryOn) {
      // Exec'd/remote workers have their own (disabled) telemetry state;
      // the coordinator turns collection on so counters flow back on the
      // Result frames.  No export directory: workers never write files.
      telemetry::setEnabled(true);
      continue;
    }
    if (msg.type != MsgType::Task) return 1;

    int index = -1;
    std::uint64_t taskHash = 0;
    try {
      decodeTask(msg.payload, index, taskHash);
    } catch (const std::exception&) {
      return 1;
    }
    if (taskHash != hash || index < 0 ||
        index >= static_cast<int>(tasks.size())) {
      if (!writeMessage(outFd, MsgType::TaskError,
                        encodeTaskError(index, "task does not match the "
                                               "spec this worker serves")))
        return 1;
      continue;
    }

    if (stallAfter >= 0 && served >= stallAfter) {
      // Fault injection: a wedged worker.  The coordinator's per-task
      // timeout must kill and replace us.
      for (;;) ::pause();
    }

    try {
      const RunResult result =
          ExperimentEngine::runTask(tasks[static_cast<std::size_t>(index)],
                                    spec.populationSeed);
      const std::string metrics = telemetry::enabled()
                                      ? telemetry::encodeCounterDeltas(reported)
                                      : std::string();
      if (!writeMessage(outFd, MsgType::Result,
                        encodeResult(index, result, metrics)))
        return 1;
    } catch (const std::exception& e) {
      if (!writeMessage(outFd, MsgType::TaskError,
                        encodeTaskError(index, e.what())))
        return 1;
    }

    ++served;
    if (exitAfter >= 0 && served >= exitAfter)
      ::_exit(42);  // fault injection: a crashing worker
  }
  return 0;  // coordinator hung up
}

pid_t spawnForkWorker(int& fd, const std::vector<int>& closeInChild) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return -1;
  }
  if (pid == 0) {
    ::close(sv[0]);
    for (const int other : closeInChild) ::close(other);
    ::_exit(runWorkerLoop(sv[1], sv[1]));
  }
  ::close(sv[1]);
  fd = sv[0];
  return pid;
}

pid_t spawnExecWorker(const std::string& binary, int& fd) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return -1;
  }
  if (pid == 0) {
    // dup2 clears CLOEXEC, so exactly stdin/stdout survive the exec.
    ::dup2(sv[1], STDIN_FILENO);
    ::dup2(sv[1], STDOUT_FILENO);
    ::execlp(binary.c_str(), binary.c_str(), "worker", "--stdio",
             static_cast<char*>(nullptr));
    std::fprintf(stderr, "[worker] cannot exec '%s'\n", binary.c_str());
    ::_exit(127);
  }
  ::close(sv[1]);
  fd = sv[0];
  return pid;
}

int serveWorkerOnListenSocket(int listenFd) {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    runWorkerLoop(fd, fd);
    ::close(fd);
  }
}

int workerServeStdio() {
  // Re-point fd 1 at stderr so stray library prints cannot corrupt the
  // protocol stream.
  const int proto = ::dup(STDOUT_FILENO);
  if (proto < 0) return 1;
  ::dup2(STDERR_FILENO, STDOUT_FILENO);
  const int code = runWorkerLoop(STDIN_FILENO, proto);
  ::close(proto);
  return code;
}

int workerListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 8) != 0) {
    std::fprintf(stderr, "[worker] cannot listen on port %d\n", port);
    ::close(fd);
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  std::fprintf(stderr, "[worker %d] listening on port %d\n", ::getpid(),
               static_cast<int>(ntohs(addr.sin_port)));
  const int code = serveWorkerOnListenSocket(fd);
  ::close(fd);
  return code;
}

int connectTcpWorker(const std::string& host, int port, int timeoutMs) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* list = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &list) != 0)
    return -1;

  int fd = -1;
  for (struct addrinfo* ai = list; ai != nullptr && fd < 0;
       ai = ai->ai_next) {
    const int s = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                           ai->ai_protocol);
    if (s < 0) continue;
    const int flags = ::fcntl(s, F_GETFL, 0);
    ::fcntl(s, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(s, ai->ai_addr, ai->ai_addrlen);
    bool ok = rc == 0;
    if (!ok && errno == EINPROGRESS) {
      struct pollfd pfd;
      pfd.fd = s;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      if (::poll(&pfd, 1, timeoutMs) == 1) {
        int err = 0;
        socklen_t errLen = sizeof(err);
        ok = ::getsockopt(s, SOL_SOCKET, SO_ERROR, &err, &errLen) == 0 &&
             err == 0;
      }
    }
    if (ok) {
      ::fcntl(s, F_SETFL, flags);  // back to blocking for the wire codec
      fd = s;
    } else {
      ::close(s);
    }
  }
  ::freeaddrinfo(list);
  return fd;
}

}  // namespace hayat::engine
