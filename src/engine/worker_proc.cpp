#include "engine/worker_proc.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "engine/builtin_policies.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "engine/result_cache.hpp"
#include "engine/wire.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace hayat::engine {

namespace {

long envLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return (value && *value) ? std::atol(value) : fallback;
}

/// Worker writes race coordinator deaths; losing that race must be an
/// EPIPE error, not a fatal SIGPIPE.
void ignoreSigpipe() {
  struct sigaction sa;
  if (::sigaction(SIGPIPE, nullptr, &sa) == 0 && sa.sa_handler == SIG_DFL) {
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  }
}

/// Cache directory this worker stores pushed entries into — the same
/// resolution the coordinator-side engine uses.
std::string workerCacheDir() {
  if (const char* env = std::getenv("HAYAT_CACHE_DIR"))
    if (*env) return env;
  return "hayat_cache";
}

bool workerCacheDisabled() {
  return std::getenv("HAYAT_NO_CACHE") != nullptr ||
         std::getenv("HAYAT_NO_SWEEP_CACHE") != nullptr;
}

void countWorker(const char* name) {
  telemetry::Registry::global().counter(name).add();
}

/// A pushed entry is best-effort cache warming: malformed frames and
/// failed stores are counted and dropped, never fatal — a corrupt push
/// must not cost the fleet a worker.
void handleCachePush(const std::string& payload) {
  std::string name;
  std::uint64_t hash = 0;
  std::string fileBytes;
  try {
    decodeCachePush(payload, name, hash, fileBytes);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[worker %d] rejecting cache push: %s\n", ::getpid(),
                 e.what());
    countWorker("hayat_worker_cache_push_rejected_total");
    return;
  }
  if (workerCacheDisabled()) {
    countWorker("hayat_worker_cache_push_rejected_total");
    return;
  }
  if (storePushedCacheEntry(workerCacheDir(), name, hash, fileBytes)) {
    countWorker("hayat_worker_cache_push_stored_total");
  } else {
    countWorker("hayat_worker_cache_push_rejected_total");
  }
}

/// Writes all of `data`; plain blocking loop (HTTP responses are small).
void writeAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Answers one already-accepted HTTP connection: reads the request head
/// (bounded), serves workerMetricsHttpResponse for the target.
void serveHttpRequest(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 16 * 1024 &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  // Request line: "<METHOD> <target> HTTP/1.x".
  std::string method;
  std::string target = "/";
  const std::size_t sp1 = head.find(' ');
  if (sp1 != std::string::npos) {
    method = head.substr(0, sp1);
    const std::size_t sp2 = head.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) target = head.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  if (method != "GET") {
    // A worker's HTTP face is read-only; POSTing to it used to be
    // silently dropped by the sniff, now it is an explicit 405.
    writeAll(fd, workerHttpResponse(405, "method not allowed\n"));
    return;
  }
  writeAll(fd, workerMetricsHttpResponse(target));
}

/// True when the first peeked bytes look like the start of an HTTP
/// request (any common method), as opposed to the 'H''W' wire magic.
bool looksLikeHttp(const char* peek, std::size_t n) {
  static constexpr const char* kMethods[] = {"GET ",  "POST", "PUT ",
                                             "DELE",  "HEAD", "OPTI",
                                             "PATC"};
  for (const char* m : kMethods)
    if (n >= 4 && std::memcmp(peek, m, 4) == 0) return true;
  return false;
}

}  // namespace

std::string workerHttpResponse(int status, const std::string& body) {
  std::ostringstream out;
  if (status == 200) {
    out << "HTTP/1.0 200 OK\r\n"
        << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  } else if (status == 405) {
    out << "HTTP/1.0 405 Method Not Allowed\r\n"
        << "Allow: GET\r\n"
        << "Content-Type: text/plain; charset=utf-8\r\n";
  } else {
    out << "HTTP/1.0 404 Not Found\r\n"
        << "Content-Type: text/plain; charset=utf-8\r\n";
  }
  out << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

std::string workerMetricsHttpResponse(const std::string& target) {
  // Advances even with telemetry disabled, so /metrics always has at
  // least one sample and a scrape of an idle worker is distinguishable
  // from a scrape of nothing.
  countWorker("hayat_worker_metrics_requests_total");
  if (target != "/metrics") return workerHttpResponse(404, "not found\n");
  std::ostringstream body;
  telemetry::writePrometheus(body, telemetry::Registry::global().snapshot(),
                             telemetry::workerCounters(),
                             telemetry::workerHistograms());
  return workerHttpResponse(200, body.str());
}

int runWorkerLoop(int inFd, int outFd) {
  ignoreSigpipe();
  registerBuiltinPolicies();

  // Wire v5: a worker serves every spec it has been sent, keyed by the
  // spec hash the Task frames carry — one connection can interleave the
  // tasks of all the concurrent jobs a `hayat serve` scheduler
  // multiplexes onto it.  The handshake is unchanged: the first message
  // must still be a Spec.
  struct ServedSpec {
    ExperimentSpec spec;
    std::vector<RunTask> tasks;
  };
  std::map<std::uint64_t, ServedSpec> specs;
  const auto addSpec = [&specs](const std::string& payload) {
    ServedSpec served;
    try {
      served.spec = decodeSpec(payload);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[worker %d] bad spec: %s\n", ::getpid(),
                   e.what());
      return false;
    }
    served.tasks = ExperimentEngine().expand(served.spec);
    specs[specHash(served.spec)] = std::move(served);
    return true;
  };

  Message msg;
  if (!readMessage(inFd, msg) || msg.type != MsgType::Spec) return 1;
  if (!addSpec(msg.payload)) return 1;

  // Fault injection, two vintages: the legacy single-purpose envs and
  // the HAYAT_FAULT_PLAN grammar (fault.hpp); legacy wins where both
  // address the same behavior so old tests keep their exit codes.
  const WorkerFaults faults = workerFaultsFromEnv();
  const long exitAfter = envLong("HAYAT_WORKER_EXIT_AFTER", -1);
  const long dieAfter = faults.dieAfter;
  const long stallAfter =
      envLong("HAYAT_WORKER_STALL_AFTER", faults.stallAfter);
  const long delayMs = faults.delayMs;
  long served = 0;

  // Metric values already reported to the coordinator; Result frames
  // carry only what advanced since (telemetry::encode*Deltas).
  std::map<std::string, std::uint64_t> reported;
  std::map<std::string, telemetry::HistogramSnapshot> reportedHists;
  if (telemetry::enabled()) {
    // Fork workers inherit the coordinator's metric values wholesale;
    // baseline them so only this process's work is reported as deltas.
    telemetry::encodeCounterDeltas(reported);
    telemetry::encodeHistogramDeltas(reportedHists);
  }

  while (readMessage(inFd, msg)) {
    if (msg.type == MsgType::Shutdown) return 0;
    if (msg.type == MsgType::Spec) {
      if (!addSpec(msg.payload)) return 1;
      continue;
    }
    if (msg.type == MsgType::TelemetryOn) {
      // Exec'd/remote workers have their own (disabled) telemetry state;
      // the coordinator turns collection on so counters flow back on the
      // Result frames.  No export directory: workers never write files.
      telemetry::setEnabled(true);
      continue;
    }
    if (msg.type == MsgType::CachePush) {
      handleCachePush(msg.payload);
      continue;
    }
    if (msg.type != MsgType::Task) return 1;

    int index = -1;
    std::uint64_t taskHash = 0;
    try {
      decodeTask(msg.payload, index, taskHash);
    } catch (const std::exception&) {
      return 1;
    }
    const auto servedIt = specs.find(taskHash);
    if (servedIt == specs.end() || index < 0 ||
        index >= static_cast<int>(servedIt->second.tasks.size())) {
      if (!writeMessage(outFd, MsgType::TaskError,
                        encodeTaskError(index, "task does not match any "
                                               "spec this worker serves")))
        return 1;
      continue;
    }
    const ServedSpec& serving = servedIt->second;

    if (stallAfter >= 0 && served >= stallAfter) {
      // Fault injection: a wedged worker.  The coordinator's per-task
      // timeout must kill and replace us.
      for (;;) ::pause();
    }

    try {
      const auto started = std::chrono::steady_clock::now();
      const RunResult result = ExperimentEngine::runTask(
          serving.tasks[static_cast<std::size_t>(index)],
          serving.spec.populationSeed);
      std::string metrics;
      if (telemetry::enabled()) {
        static telemetry::Histogram& taskSeconds =
            telemetry::Registry::global().histogram(
                "hayat_worker_task_seconds",
                {0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0});
        taskSeconds.observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count());
        metrics = telemetry::encodeCounterDeltas(reported) +
                  telemetry::encodeHistogramDeltas(reportedHists);
      }
      if (delayMs > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
      if (!writeMessage(outFd, MsgType::Result,
                        encodeResult(index, result, metrics)))
        return 1;
    } catch (const std::exception& e) {
      if (!writeMessage(outFd, MsgType::TaskError,
                        encodeTaskError(index, e.what())))
        return 1;
    }

    ++served;
    if (exitAfter >= 0 && served >= exitAfter)
      ::_exit(42);  // fault injection: a crashing worker (legacy hook)
    if (dieAfter >= 0 && served >= dieAfter)
      ::_exit(kFaultDeathExitCode);  // fault injection: die:worker=...
  }
  return 0;  // coordinator hung up
}

pid_t spawnForkWorker(int& fd, const std::vector<int>& closeInChild,
                      int slot) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return -1;
  }
  if (pid == 0) {
    ::close(sv[0]);
    for (const int other : closeInChild) ::close(other);
    // The child inherited the coordinator's installed fault plan; only
    // the write-side coordinator rules must not fire here, the
    // worker-side rules are re-read from the environment.
    clearCoordinatorFaults();
    if (slot >= 0)
      ::setenv("HAYAT_FAULT_WORKER", std::to_string(slot).c_str(), 1);
    ::_exit(runWorkerLoop(sv[1], sv[1]));
  }
  ::close(sv[1]);
  fd = sv[0];
  return pid;
}

pid_t spawnExecWorker(const std::string& binary, int& fd, int slot) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
    return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return -1;
  }
  if (pid == 0) {
    // dup2 clears CLOEXEC, so exactly stdin/stdout survive the exec.
    ::dup2(sv[1], STDIN_FILENO);
    ::dup2(sv[1], STDOUT_FILENO);
    if (slot >= 0)
      ::setenv("HAYAT_FAULT_WORKER", std::to_string(slot).c_str(), 1);
    ::execlp(binary.c_str(), binary.c_str(), "worker", "--stdio",
             static_cast<char*>(nullptr));
    std::fprintf(stderr, "[worker] cannot exec '%s'\n", binary.c_str());
    ::_exit(127);
  }
  ::close(sv[1]);
  fd = sv[0];
  return pid;
}

int serveWorkerOnListenSocket(int listenFd) {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    // One listen port, two protocols: wire coordinators open with the
    // 'H''W' magic, HTTP scrapers with a method token.  Peek without
    // consuming so the wire codec still sees the full frame.  Any
    // recognized HTTP method is routed to the HTTP handler (non-GET
    // answers 405 there) instead of being fed to the wire codec, whose
    // bad-magic error used to read as a silent hangup.
    char peek[4] = {0};
    ssize_t got;
    do {
      got = ::recv(fd, peek, sizeof(peek), MSG_PEEK | MSG_WAITALL);
    } while (got < 0 && errno == EINTR);
    if (got == static_cast<ssize_t>(sizeof(peek)) &&
        looksLikeHttp(peek, sizeof(peek))) {
      serveHttpRequest(fd);
    } else {
      runWorkerLoop(fd, fd);
    }
    ::close(fd);
  }
}

int workerServeStdio() {
  // Re-point fd 1 at stderr so stray library prints cannot corrupt the
  // protocol stream.
  const int proto = ::dup(STDOUT_FILENO);
  if (proto < 0) return 1;
  ::dup2(STDERR_FILENO, STDOUT_FILENO);
  const int code = runWorkerLoop(STDIN_FILENO, proto);
  ::close(proto);
  return code;
}

int workerListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 8) != 0) {
    std::fprintf(stderr, "[worker] cannot listen on port %d\n", port);
    ::close(fd);
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  std::fprintf(stderr, "[worker %d] listening on port %d\n", ::getpid(),
               static_cast<int>(ntohs(addr.sin_port)));
  const int code = serveWorkerOnListenSocket(fd);
  ::close(fd);
  return code;
}

int connectTcpWorker(const std::string& host, int port, int timeoutMs) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* list = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &list) != 0)
    return -1;

  int fd = -1;
  for (struct addrinfo* ai = list; ai != nullptr && fd < 0;
       ai = ai->ai_next) {
    const int s = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                           ai->ai_protocol);
    if (s < 0) continue;
    const int flags = ::fcntl(s, F_GETFL, 0);
    ::fcntl(s, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(s, ai->ai_addr, ai->ai_addrlen);
    bool ok = rc == 0;
    if (!ok && errno == EINPROGRESS) {
      struct pollfd pfd;
      pfd.fd = s;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      if (::poll(&pfd, 1, timeoutMs) == 1) {
        int err = 0;
        socklen_t errLen = sizeof(err);
        ok = ::getsockopt(s, SOL_SOCKET, SO_ERROR, &err, &errLen) == 0 &&
             err == 0;
      }
    }
    if (ok) {
      ::fcntl(s, F_SETFL, flags);  // back to blocking for the wire codec
      fd = s;
    } else {
      ::close(s);
    }
  }
  ::freeaddrinfo(list);
  return fd;
}

}  // namespace hayat::engine
