#include "engine/task_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace hayat::engine {

int defaultWorkerCount() {
  if (const char* env = std::getenv("HAYAT_WORKERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void runParallel(int count, int workers,
                 const std::function<void(int)>& task) {
  HAYAT_REQUIRE(count >= 0, "negative task count");
  if (count == 0) return;

  if (workers <= 0) workers = defaultWorkerCount();
  if (workers > count) workers = count;

  if (telemetry::enabled()) {
    static telemetry::Counter& tasks =
        telemetry::Registry::global().counter("hayat_pool_tasks_total");
    static telemetry::Gauge& poolWorkers =
        telemetry::Registry::global().gauge("hayat_pool_workers");
    tasks.add(static_cast<std::uint64_t>(count));
    poolWorkers.set(workers);
  }

  if (workers <= 1) {
    for (int i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<int> next{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  auto worker = [&]() {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::scoped_lock lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace hayat::engine
