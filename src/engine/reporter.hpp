// The single result reporter: serializes a SweepTable to CSV or JSON.
//
// Replaces the hand-rolled printf tables each bench used to carry.  The
// CSV schema is one row per (run, epoch) plus per-run summary columns;
// the JSON document nests runs with their epoch traces.  Both writers
// print doubles with %.17g so exported files are bitwise-comparable
// across worker counts (the determinism acceptance check diffs them).
#pragma once

#include <iosfwd>
#include <string>

#include "engine/engine.hpp"

namespace hayat::engine {

/// Per-run summary rows:
/// chip,repetition,dark,policy,horizon,finalChipFmax,finalAverageFmax,...
void writeSummaryCsv(std::ostream& out, const SweepTable& table);

/// Full trace: one row per (run, epoch) with all EpochRecord columns.
void writeEpochsCsv(std::ostream& out, const SweepTable& table);

/// Nested JSON document (runs -> summary + epoch arrays).
void writeJson(std::ostream& out, const SweepTable& table);

/// Writes `<prefix>_summary.csv`, `<prefix>_epochs.csv` and
/// `<prefix>.json`.  Returns false if any file could not be opened.
bool exportTable(const std::string& prefix, const SweepTable& table);

/// Honors the HAYAT_EXPORT environment variable: when set, exports the
/// table under `<HAYAT_EXPORT>/<name>` and reports where.  No-op when
/// unset.  Benches call this after printing their figure claims.
void maybeExportTable(const std::string& name, const SweepTable& table);

}  // namespace hayat::engine
