// ExperimentEngine — parallel execution of ExperimentSpecs.
//
// The engine expands a spec into independent RunTasks (one per
// chip x dark fraction x policy x repetition), executes them on a
// std::thread worker pool with one System and one policy instance per
// task (no shared mutable state), and merges the results by task index —
// so the merged SweepTable is bit-identical to a serial run regardless of
// worker count.  Results are cached on disk keyed by the spec hash
// (experiment.hpp): re-running an unchanged spec loads the table without
// a single EpochSimulator call.
//
// Execution is in-process by default; setting a dispatch spec (the
// EngineConfig or HAYAT_DISPATCH) farms the tasks out to worker
// *processes* instead — forked locally, exec'd hayat binaries, or remote
// `hayat worker --listen` servers over TCP (dispatcher.hpp).  The merge
// is by task index either way, so the table stays bit-identical to a
// serial run for any topology, and the engine degrades back to the
// thread pool when no workers are reachable.  The result cache is
// consulted and written on the coordinator only; workers stay stateless.
//
// Environment knobs (all optional):
//   HAYAT_WORKERS    — worker thread count (default: hardware concurrency)
//   HAYAT_DISPATCH   — distributed dispatch spec, e.g. "proc:4" or
//                      "proc:2,tcp:10.0.0.5:7707" (default: in-process)
//   HAYAT_WORKER_BIN — binary exec'd for "exec:N" workers (default: hayat)
//   HAYAT_CACHE_DIR  — result-cache directory (default: ./hayat_cache)
//   HAYAT_NO_CACHE   — disable the result cache entirely
//   HAYAT_NO_SWEEP_CACHE — legacy alias of HAYAT_NO_CACHE
//   HAYAT_CACHE_MAX_BYTES — evict oldest cache entries beyond this size
//   HAYAT_CACHE_MAX_AGE   — evict cache entries older than this [seconds]
//   HAYAT_TELEMETRY  — telemetry export directory (enables collection;
//                      see src/telemetry/telemetry.hpp)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/experiment.hpp"
#include "engine/task_pool.hpp"

namespace hayat::engine {

/// One expanded unit of work: a single (chip, policy, dark, repetition)
/// lifetime run with every seed resolved.
struct RunTask {
  int index = 0;        ///< position in the merged result table
  int chip = 0;
  int repetition = 0;
  double darkFraction = 0.5;
  PolicySpec policy;
  SystemConfig system;      ///< thermalSensorSeed resolved
  LifetimeConfig lifetime;  ///< dark fraction + seeds resolved
};

/// The outcome of one RunTask: identity columns plus the full lifetime
/// trace (everything any figure bench consumes).
struct RunResult {
  int chip = 0;
  int repetition = 0;
  double darkFraction = 0.5;
  std::string policy;       ///< PolicySpec label
  Kelvin ambient = 0.0;     ///< for temperature-over-ambient metrics
  LifetimeResult lifetime;

  /// Mean achieved/required throughput over the epochs.
  double throughputRatio() const;
};

/// The merged result table with the selection helpers the figure benches
/// share.
struct SweepTable {
  std::vector<RunResult> runs;

  /// Runs of one (policy label, dark fraction) cell, in table order.
  std::vector<const RunResult*> select(const std::string& policy,
                                       double darkFraction) const;

  /// sum(metric over `numerator` runs) / sum(metric over `denominator`
  /// runs) at a dark fraction — the VAA-normalized bars of Figs. 7-10.
  /// Throws if the denominator aggregates to zero.
  double aggregateRatio(double darkFraction,
                        double (*metric)(const RunResult&),
                        const std::string& numerator = "Hayat",
                        const std::string& denominator = "VAA") const;
};

/// Execution settings; zero values defer to the environment knobs above.
struct EngineConfig {
  int workers = 0;           ///< <= 0: HAYAT_WORKERS or hardware
  bool cache = true;         ///< overridden off by HAYAT_NO_CACHE
  std::string cacheDir;      ///< "": HAYAT_CACHE_DIR or "hayat_cache"
  /// Distributed dispatch spec ("proc:N", "exec:N", "tcp:host:port",
  /// comma-separated).  "": HAYAT_DISPATCH, and failing that in-process
  /// threads.  Fixed-mix specs always run in-process (they have no
  /// canonical wire serialization).
  std::string dispatch;
  /// Cache size bound: after each store, oldest entries are evicted
  /// until the directory fits.  0: HAYAT_CACHE_MAX_BYTES, else unbounded.
  std::uint64_t cacheMaxBytes = 0;
  /// Cache age bound [seconds]; entries older than this are evicted
  /// after each store.  0 evicts everything (the `--cache-max-age=0`
  /// flush idiom); negative: HAYAT_CACHE_MAX_AGE, else unbounded.
  double cacheMaxAgeSeconds = -1.0;
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineConfig config = {});

  /// Deterministic task expansion, ordered chip-major:
  /// chips x darkFractions x policies x repetitions.
  std::vector<RunTask> expand(const ExperimentSpec& spec) const;

  /// Runs (or loads from cache) the whole spec.
  SweepTable run(const ExperimentSpec& spec) const;

  /// Executes one expanded task (builds the System, instantiates the
  /// policy from the registry, runs the lifetime loop).
  static RunResult runTask(const RunTask& task, std::uint64_t populationSeed);

  /// Escape hatch for bespoke policy objects (e.g. a fixed-DCM policy a
  /// bench constructs itself): the engine's single-run path without the
  /// registry.  Use the spec path whenever the policy has a name.
  static RunResult runWithPolicy(System& system, const LifetimeConfig& config,
                                 MappingPolicy& policy, int chip = 0,
                                 int repetition = 0);

  const EngineConfig& config() const { return config_; }

  /// Effective settings after applying the environment.
  int workers() const;
  bool cacheEnabled() const;
  std::string cacheDir() const;
  std::string dispatchSpec() const;
  std::uint64_t cacheMaxBytes() const;
  /// Negative when no age bound is configured (see EngineConfig).
  double cacheMaxAgeSeconds() const;

 private:
  EngineConfig config_;
};

}  // namespace hayat::engine
