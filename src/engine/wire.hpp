// Coordinator <-> worker wire protocol.
//
// Distributed sweeps ship three kinds of payloads between the
// coordinator (dispatcher.hpp) and worker processes (worker_proc.hpp):
// the ExperimentSpec (once per connection), task assignments (just the
// task index — workers re-expand the spec deterministically, so the spec
// hash is the complete work-partitioning key), and RunResults.  Every
// message is length-prefixed:
//
//   'H' 'W' <version:u8> <type:u8> <payloadLength:u32 big-endian> <payload>
//
// Payloads are the same canonical text the signature and result cache
// use (key=value lines, doubles at %.17g), so a result that crosses the
// wire is bit-identical to one computed in-process — the property the
// dispatch determinism tests pin down.  The codec works over any byte
// stream: socketpairs for forked workers, TCP sockets for remote ones.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "telemetry/metrics.hpp"

namespace hayat::engine {

/// Protocol version; bumped on any framing or payload change.  A version
/// mismatch terminates the connection (workers and coordinators from
/// different builds must not exchange half-understood tasks).
/// v2: TelemetryOn message; Result frames may carry a trailing metrics
/// section (counter deltas for coordinator-side merge).
/// v3: CachePush frame (coordinator warms remote result caches); the
/// Result metrics section may also carry histogram deltas ("h," lines).
/// v4: ExperimentSpec payload gained the policyPrune field (the spec
/// walker drives the codec, so the layout changed with it).
/// v5: workers keep every Spec they are sent (a map keyed by spec hash)
/// instead of exactly one, and accept Spec frames at any point in the
/// stream — one connection can interleave tasks from all the concurrent
/// jobs a `hayat serve` scheduler multiplexes onto it.  The Task payload
/// already carried the spec hash, so the frames are unchanged; the
/// version bump exists because a v4 worker would answer TaskError for
/// every task of a second spec.
/// v6: the spec walker gained the failure Monte Carlo knobs and Result
/// records carry a failure section (result-cache format v4), so both
/// payload layouts changed.
inline constexpr std::uint8_t kWireVersion = 6;

/// Message types.
enum class MsgType : std::uint8_t {
  Spec = 1,         ///< coordinator -> worker: the experiment to serve
  Task = 2,         ///< coordinator -> worker: one task index to run
  Result = 3,       ///< worker -> coordinator: task index + RunResult
  TaskError = 4,    ///< worker -> coordinator: task index + error text
  Shutdown = 5,     ///< coordinator -> worker: finish and exit cleanly
  TelemetryOn = 6,  ///< coordinator -> worker: start metrics collection
  CachePush = 7,    ///< coordinator -> worker: one result-cache entry
};

struct Message {
  MsgType type = MsgType::Shutdown;
  std::string payload;
};

/// Writes one framed message; retries on EINTR / short writes.  Returns
/// false on any write error (e.g. EPIPE after a worker death).
bool writeMessage(int fd, MsgType type, const std::string& payload);

/// Blocking read of one framed message.  Returns false on EOF, a read
/// error, a bad magic/version, or an oversized payload — all of which the
/// caller must treat as a dead peer.
bool readMessage(int fd, Message& out);

/// Like readMessage but waits at most `timeoutMs` for the message to
/// *start* arriving (poll on the first byte).  On timeout returns false
/// with `timedOut` set; any other false is a dead peer.
bool readMessage(int fd, Message& out, int timeoutMs, bool& timedOut);

/// Spec payload: `spec.name=<name>` line followed by the canonical field
/// walk.  Throws hayat::Error for specs that cannot cross the wire (a
/// fixed workload mix has no canonical serialization).
std::string encodeSpec(const ExperimentSpec& spec);

/// Parses an encoded spec; throws hayat::Error on any malformed or
/// out-of-order field.
ExperimentSpec decodeSpec(const std::string& payload);

/// Task payload: the task index plus the spec hash (cheap guard against
/// a worker serving a different spec than the coordinator assigned).
std::string encodeTask(int index, std::uint64_t specHash);
void decodeTask(const std::string& payload, int& index,
                std::uint64_t& specHash);

/// Result payload: task index line + the result-cache run record,
/// optionally followed by a telemetry metrics section
///
///   metrics,<lineCount>
///   c,<counterName>,<delta>
///   ...
///
/// (telemetry::encodeCounterDeltas output).  Telemetry-enabled workers
/// piggyback their counter *deltas* on every result so the coordinator
/// can aggregate fleet metrics without a shared filesystem; deltas since
/// a worker's last result are lost if it dies — an accepted gap, since
/// the flight data lives on the coordinator.
std::string encodeResult(int index, const RunResult& result,
                         const std::string& metricsText = "");

/// Decodes a Result payload.  When `metricDeltas` is non-null, any
/// metrics section (counter and histogram deltas) is parsed into it
/// (cleared first; absent section leaves it empty); a malformed metrics
/// section throws like any other malformed payload.
void decodeResult(const std::string& payload, int& index, RunResult& result,
                  telemetry::MetricDeltas* metricDeltas = nullptr);

/// CachePush payload: cache format version + entry identity + the raw
/// cache-file bytes.  Workers that receive one store it into their own
/// result-cache directory so a restarted fleet never recomputes a sweep
/// the coordinator already has.  Stamped with kCacheFormatVersion (not
/// just the wire version): a worker must reject an entry its cache
/// reader cannot parse even if the wire protocol matches.
std::string encodeCachePush(const std::string& specName, std::uint64_t hash,
                            const std::string& fileBytes);

/// Decodes a CachePush payload; throws hayat::Error on a malformed
/// payload, a cache-format-version mismatch, or a byte-count mismatch.
void decodeCachePush(const std::string& payload, std::string& specName,
                     std::uint64_t& hash, std::string& fileBytes);

/// TaskError payload: task index line + one free-form message line.
std::string encodeTaskError(int index, const std::string& message);
void decodeTaskError(const std::string& payload, int& index,
                     std::string& message);

}  // namespace hayat::engine
