// Deterministic parallel fan-out primitive.
//
// Every engine workload is an index space of fully independent tasks
// (one System per task, no shared mutable state).  runParallel executes
// the space on a std::thread worker pool; because each task writes only
// its own output slot, the merged result is *bit-identical* to a serial
// run regardless of worker count or scheduling — the property the
// engine's determinism tests pin down.
#pragma once

#include <functional>
#include <vector>

namespace hayat::engine {

/// Worker count used when a caller passes workers <= 0: the
/// HAYAT_WORKERS environment variable if set, else the hardware
/// concurrency (at least 1).
int defaultWorkerCount();

/// Runs task(0) .. task(count - 1) on `workers` threads (<= 1 runs inline
/// on the calling thread).  Tasks must be independent: each may write
/// only state owned by its own index.  The first exception thrown by any
/// task is rethrown on the calling thread after all workers finish.
void runParallel(int count, int workers,
                 const std::function<void(int)>& task);

/// Convenience: materializes fn(0..count-1) into a vector, in index
/// order, using runParallel.  T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallelMap(int count, int workers, Fn fn) {
  std::vector<T> out(static_cast<std::size_t>(count));
  runParallel(count, workers,
              [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

}  // namespace hayat::engine
