#include "engine/builtin_policies.hpp"

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>

#include "baselines/simple_policies.hpp"
#include "baselines/utilization_aware.hpp"
#include "baselines/vaa.hpp"
#include "common/error.hpp"
#include "core/exhaustive_policy.hpp"
#include "core/hayat_policy.hpp"
#include "runtime/policy_registry.hpp"

namespace hayat::engine {

namespace {

/// Enforces the PolicyFactory contract: unknown parameter names throw.
void requireKnownParams(const char* policy, const PolicyParams& params,
                        std::initializer_list<const char*> known) {
  for (const auto& [key, value] : params) {
    (void)value;
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok)
      throw Error(std::string(policy) + " policy has no parameter \"" + key +
                  "\"");
  }
}

DutyPolicy dutyPolicyFromParam(double value) {
  const int v = static_cast<int>(value);
  switch (v) {
    case 0:
      return DutyPolicy::Generic;
    case 1:
      return DutyPolicy::Known;
    case 2:
      return DutyPolicy::WorstCase;
    default:
      throw Error("dutyPolicy parameter must be 0 (Generic), 1 (Known) "
                  "or 2 (WorstCase)");
  }
}

std::unique_ptr<MappingPolicy> makeHayat(const PolicyParams& params) {
  requireKnownParams("Hayat", params,
                     {"earlyAlphaGHz", "earlyBeta", "lateAlphaGHz", "lateBeta",
                      "wmax", "lateAgingOnset", "dutyPolicy",
                      "leakageIterations", "wearGamma", "pruneRadius"});
  HayatConfig config;
  config.earlyAlphaGHz = paramOr(params, "earlyAlphaGHz", config.earlyAlphaGHz);
  config.earlyBeta = paramOr(params, "earlyBeta", config.earlyBeta);
  config.lateAlphaGHz = paramOr(params, "lateAlphaGHz", config.lateAlphaGHz);
  config.lateBeta = paramOr(params, "lateBeta", config.lateBeta);
  config.wmax = paramOr(params, "wmax", config.wmax);
  config.lateAgingOnset =
      paramOr(params, "lateAgingOnset", config.lateAgingOnset);
  if (params.count("dutyPolicy"))
    config.dutyPolicy = dutyPolicyFromParam(params.at("dutyPolicy"));
  config.leakageIterations = static_cast<int>(
      paramOr(params, "leakageIterations", config.leakageIterations));
  config.wearGamma = paramOr(params, "wearGamma", config.wearGamma);
  config.pruneRadius = static_cast<int>(
      paramOr(params, "pruneRadius", static_cast<double>(config.pruneRadius)));
  return std::make_unique<HayatPolicy>(config);
}

std::unique_ptr<MappingPolicy> makeVaa(const PolicyParams& params) {
  requireKnownParams("VAA", params, {"availabilityRadius", "seed"});
  VaaConfig config;
  config.availabilityRadius = static_cast<int>(
      paramOr(params, "availabilityRadius", config.availabilityRadius));
  config.seed = static_cast<std::uint64_t>(
      paramOr(params, "seed", static_cast<double>(config.seed)));
  return std::make_unique<VaaPolicy>(config);
}

std::unique_ptr<MappingPolicy> makeRandom(const PolicyParams& params) {
  requireKnownParams("Random", params, {"seed"});
  return std::make_unique<RandomPolicy>(
      static_cast<std::uint64_t>(paramOr(params, "seed", 7.0)));
}

std::unique_ptr<MappingPolicy> makeCoolestFirst(const PolicyParams& params) {
  requireKnownParams("CoolestFirst", params, {});
  return std::make_unique<CoolestFirstPolicy>();
}

std::unique_ptr<MappingPolicy> makeUtilizationAware(
    const PolicyParams& params) {
  requireKnownParams("UtilizationAware", params, {});
  return std::make_unique<UtilizationAwarePolicy>();
}

std::unique_ptr<MappingPolicy> makeExhaustive(const PolicyParams& params) {
  requireKnownParams("Exhaustive", params, {"maxAssignments", "dutyPolicy"});
  ExhaustiveConfig config;
  config.maxAssignments = static_cast<std::uint64_t>(paramOr(
      params, "maxAssignments", static_cast<double>(config.maxAssignments)));
  if (params.count("dutyPolicy"))
    config.dutyPolicy = dutyPolicyFromParam(params.at("dutyPolicy"));
  return std::make_unique<ExhaustivePolicy>(config);
}

}  // namespace

void registerBuiltinPolicies() {
  static std::once_flag once;
  std::call_once(once, [] {
    PolicyRegistry& registry = PolicyRegistry::global();
    registry.add("Hayat", makeHayat);
    registry.add("VAA", makeVaa);
    registry.add("Random", makeRandom);
    registry.add("CoolestFirst", makeCoolestFirst);
    registry.add("UtilizationAware", makeUtilizationAware);
    registry.add("Exhaustive", makeExhaustive);
  });
}

}  // namespace hayat::engine
