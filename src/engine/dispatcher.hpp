// Coordinator side of the distributed ExperimentEngine.
//
// The Dispatcher farms the expanded RunTasks of one ExperimentSpec out
// to worker processes — forked locally (`proc:N`), fork/exec'd hayat
// binaries (`exec:N`), or remote `hayat worker --listen` servers dialed
// over TCP (`tcp:host:port`) — and merges Result messages by task index,
// so the merged table is bit-identical to a serial run for any worker
// topology.
//
// It is built to survive workers, not just use them:
//   - per-task timeout: a worker that holds a task too long is killed
//     (or disconnected) and its task re-queued;
//   - death detection: EOF / write errors re-queue every task queued on
//     the dead worker and respawn the slot with exponential backoff, up
//     to maxRespawns per slot;
//   - bounded retry: a task that keeps failing (maxTaskRetries attempts,
//     counting both worker deaths and TaskError replies) is pulled back
//     and executed locally, where a genuine error can propagate;
//   - work stealing: each worker holds a short queue (workerQueueDepth)
//     so it never starves between results; once the pending list drains,
//     idle workers steal queued tasks from the deepest queue — and, past
//     stealHeadAfterSeconds, speculatively re-dispatch a stalled head
//     task.  A steal can make two workers compute the same index; the
//     first Result wins and later duplicates are dropped by index, so
//     the merged table stays byte-identical to a serial run;
//   - graceful degradation: with zero reachable workers (or once every
//     slot is permanently dead) the remaining tasks run on the local
//     thread pool, so a sweep never fails because a fleet did.
//
// The wire layer underneath carries a deterministic fault-injection
// shim (fault.hpp, HAYAT_FAULT_PLAN) so each of those recovery paths is
// pinned by name in tests/test_dispatch.cpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace hayat::engine {

/// One entry of a `--workers=` / HAYAT_DISPATCH list.
struct WorkerEndpoint {
  enum class Kind {
    Fork,  ///< proc:N — fork this process, child serves tasks in-image
    Exec,  ///< exec:N — fork/exec `hayat worker --stdio` (HAYAT_WORKER_BIN)
    Tcp,   ///< tcp:host:port — dial a `hayat worker --listen` server
  };
  Kind kind = Kind::Fork;
  int count = 1;       ///< Fork/Exec: processes to spawn
  std::string host;    ///< Tcp
  int port = 0;        ///< Tcp
};

/// Parses a comma-separated endpoint list: "proc:4", "exec:2",
/// "tcp:host:port", "proc:2,tcp:10.0.0.5:7707".  Throws hayat::Error on
/// malformed input.
std::vector<WorkerEndpoint> parseWorkerSpec(const std::string& text);

struct DispatchConfig {
  std::vector<WorkerEndpoint> endpoints;
  /// A task in flight longer than this is presumed lost; the worker is
  /// killed and the task re-queued.
  double taskTimeoutSeconds = 300.0;
  /// Attempts per task (deaths + TaskError replies) before it is pulled
  /// back to local execution.
  int maxTaskRetries = 3;
  /// First respawn delay for a dead worker slot; doubles per consecutive
  /// death of that slot.
  double respawnBackoffSeconds = 0.2;
  /// Respawn (or TCP reconnect) attempts per worker slot.
  int maxRespawns = 3;
  /// Thread count for degraded/local execution; <= 0 uses
  /// defaultWorkerCount().
  int localFallbackWorkers = 0;
  /// Dial timeout for TCP endpoints.
  int connectTimeoutMs = 2000;
  /// Tasks queued per worker (front = running).  Depth > 1 pipelines the
  /// next task behind the running one and gives stealing something to
  /// take; 1 restores the one-at-a-time v2 behavior.
  int workerQueueDepth = 2;
  /// Once the pending list is empty, an idle worker may re-dispatch a
  /// *running* (head) task that has been in flight longer than this —
  /// the speculative re-steal path for stalled-but-alive workers.
  /// <= 0 disables head stealing (tail stealing is always on).
  double stealHeadAfterSeconds = 0.0;
  /// Fault-injection plan for tests ("": use HAYAT_FAULT_PLAN).  Parsed
  /// and installed at construction; see fault.hpp for the grammar.
  std::string faultPlan;
};

/// Observability counters (the crash-recovery tests assert on these).
struct DispatchStats {
  int workersSpawned = 0;    ///< processes forked/exec'd + TCP dials
  int workersConnected = 0;  ///< endpoints that accepted the spec
  int workerDeaths = 0;      ///< EOFs, write failures, and timeout kills
  int workerRespawns = 0;    ///< successful replacements after a death
  int tasksDispatched = 0;   ///< Task messages sent (steals included)
  int tasksRetried = 0;      ///< re-queues after a death/error/timeout
  int tasksStolen = 0;       ///< tasks re-assigned from one worker to another
  int duplicateResults = 0;  ///< Results dropped because the index was done
  int cachePushes = 0;       ///< CachePush frames sent to TCP workers
  int tasksCompletedRemotely = 0;
  int tasksCompletedLocally = 0;  ///< degraded / retry-exhausted tasks
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatchConfig config);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Spawns/dials every endpoint and sends it the spec.  Returns the
  /// number of reachable workers (0 means the caller should degrade to
  /// its in-process pool).  Idempotent; run() calls it if needed.
  int connect(const ExperimentSpec& spec);

  /// Executes every task (remotely where possible, locally as the last
  /// resort) and returns results ordered by task index.  Throws only for
  /// errors that also fail locally (e.g. an unknown policy parameter).
  std::vector<RunResult> run(const ExperimentSpec& spec,
                             const std::vector<RunTask>& tasks);

  /// Pushes one result-cache entry (the raw cache-file bytes plus its
  /// identity) to every live TCP worker so a remote fleet's caches stay
  /// warm — fork/exec workers share the coordinator's filesystem and are
  /// skipped.  Returns the number of workers that accepted the frame.
  /// Requires connect() to have run.
  int pushCacheEntry(const std::string& specName, std::uint64_t hash,
                     const std::string& fileBytes);

  /// Sends Shutdown to every live worker and reaps the children.
  void shutdown();

  const DispatchStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Worker {
    WorkerEndpoint endpoint;  ///< count collapsed to 1 (one slot each)
    int fd = -1;              ///< -1 while dead
    pid_t pid = -1;           ///< forked/exec'd workers only
    /// Task indices sent and unresolved, oldest first; front is the one
    /// the worker is (presumed) computing now.
    std::deque<int> queue;
    Clock::time_point headSince{};  ///< when queue.front() became head
    int deaths = 0;
    Clock::time_point nextRespawn{};
  };

  bool spawn(Worker& worker, int slot);
  void markDead(Worker& worker, const std::vector<char>& have,
                std::vector<int>& pending, std::vector<int>& attempts,
                std::vector<int>& local);
  void reap(Worker& worker, bool force);
  /// True when `index` sits in the queue of a live worker other than
  /// `except` (the task is still owned; a death elsewhere must not
  /// re-queue it).
  bool assignedElsewhere(int index, const Worker* except) const;
  /// One stealing pass: gives each idle worker a task taken from the
  /// deepest queue (or a stalled head, past stealHeadAfterSeconds).
  void stealTasks(const std::vector<char>& have, std::vector<int>& stolen,
                  std::vector<int>& pending, std::vector<int>& attempts,
                  std::vector<int>& local);
  /// Removes a resolved index from `worker`'s queue, restarting the head
  /// timer if the head changed.
  void resolveQueued(Worker& worker, int index);

  DispatchConfig config_;
  DispatchStats stats_;
  std::vector<Worker> workers_;
  std::string specPayload_;
  std::uint64_t specHash_ = 0;
  bool connected_ = false;
  bool faultsInstalled_ = false;
};

}  // namespace hayat::engine
