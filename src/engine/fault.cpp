#include "engine/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/error.hpp"

namespace hayat::engine {

namespace detail {
std::atomic<bool> gFaultsInstalled{false};
}  // namespace detail

namespace {

struct CoordinatorFaultState {
  std::mutex mutex;
  std::vector<FaultRule> rules;  // Drop/Corrupt only
  long framesWritten = 0;
};

CoordinatorFaultState& coordState() {
  static CoordinatorFaultState* s = new CoordinatorFaultState();
  return *s;
}

long parseLongValue(const std::string& rule, const std::string& text) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  HAYAT_REQUIRE(end == text.c_str() + text.size() && !text.empty(),
                "fault plan: bad number '" + text + "' in rule '" + rule +
                    "'");
  return value;
}

/// Parses the `key=value,key=value` tail of one rule into the fields the
/// verb expects; rejects unknown or missing keys.
void parseArgs(const std::string& rule, const std::string& tail,
               FaultRule& out, bool wantFrame, bool wantMs, bool wantAfter) {
  bool haveFrame = false, haveWorker = false, haveMs = false,
       haveAfter = false;
  std::size_t start = 0;
  while (start < tail.size()) {
    std::size_t end = tail.find(',', start);
    if (end == std::string::npos) end = tail.size();
    const std::string part = tail.substr(start, end - start);
    start = end + 1;
    const std::size_t eq = part.find('=');
    HAYAT_REQUIRE(eq != std::string::npos,
                  "fault plan: expected key=value, got '" + part +
                      "' in rule '" + rule + "'");
    const std::string key = part.substr(0, eq);
    const long value = parseLongValue(rule, part.substr(eq + 1));
    if (key == "frame" && wantFrame) {
      out.frame = value;
      haveFrame = true;
    } else if (key == "worker" && !wantFrame) {
      out.worker = static_cast<int>(value);
      haveWorker = true;
    } else if (key == "ms" && wantMs) {
      out.ms = value;
      haveMs = true;
    } else if (key == "after" && wantAfter) {
      out.after = value;
      haveAfter = true;
    } else {
      throw Error("fault plan: unexpected key '" + key + "' in rule '" +
                  rule + "'");
    }
  }
  if (wantFrame) {
    HAYAT_REQUIRE(haveFrame && out.frame >= 1,
                  "fault plan: rule '" + rule +
                      "' needs frame=N with N >= 1");
  } else {
    HAYAT_REQUIRE(haveWorker && out.worker >= 0,
                  "fault plan: rule '" + rule +
                      "' needs worker=W with W >= 0");
  }
  if (wantMs)
    HAYAT_REQUIRE(haveMs && out.ms >= 0,
                  "fault plan: rule '" + rule + "' needs ms=M with M >= 0");
  if (wantAfter)
    HAYAT_REQUIRE(haveAfter && out.after >= 0,
                  "fault plan: rule '" + rule +
                      "' needs after=K with K >= 0");
}

}  // namespace

FaultPlan parseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    const std::string rule = text.substr(start, end - start);
    start = end + 1;
    if (rule.empty()) continue;
    const std::size_t colon = rule.find(':');
    HAYAT_REQUIRE(colon != std::string::npos,
                  "fault plan: expected verb:args, got '" + rule + "'");
    const std::string verb = rule.substr(0, colon);
    const std::string tail = rule.substr(colon + 1);
    FaultRule r;
    if (verb == "drop") {
      r.kind = FaultRule::Kind::Drop;
      parseArgs(rule, tail, r, /*frame=*/true, /*ms=*/false,
                /*after=*/false);
    } else if (verb == "corrupt") {
      r.kind = FaultRule::Kind::Corrupt;
      parseArgs(rule, tail, r, true, false, false);
    } else if (verb == "delay") {
      r.kind = FaultRule::Kind::Delay;
      parseArgs(rule, tail, r, false, true, false);
    } else if (verb == "die") {
      r.kind = FaultRule::Kind::Die;
      parseArgs(rule, tail, r, false, false, true);
    } else if (verb == "stall") {
      r.kind = FaultRule::Kind::Stall;
      parseArgs(rule, tail, r, false, false, true);
    } else {
      throw Error("fault plan: unknown verb '" + verb + "'");
    }
    plan.rules.push_back(r);
  }
  return plan;
}

void installCoordinatorFaults(const FaultPlan& plan) {
  CoordinatorFaultState& s = coordState();
  const std::scoped_lock lock(s.mutex);
  s.rules.clear();
  for (const FaultRule& r : plan.rules)
    if (r.kind == FaultRule::Kind::Drop ||
        r.kind == FaultRule::Kind::Corrupt)
      s.rules.push_back(r);
  s.framesWritten = 0;
  detail::gFaultsInstalled.store(!s.rules.empty(),
                                 std::memory_order_relaxed);
}

void clearCoordinatorFaults() {
  CoordinatorFaultState& s = coordState();
  const std::scoped_lock lock(s.mutex);
  s.rules.clear();
  s.framesWritten = 0;
  detail::gFaultsInstalled.store(false, std::memory_order_relaxed);
}

WriteFault nextWriteFault() {
  CoordinatorFaultState& s = coordState();
  const std::scoped_lock lock(s.mutex);
  const long frame = ++s.framesWritten;
  for (const FaultRule& r : s.rules) {
    if (r.frame != frame) continue;
    return r.kind == FaultRule::Kind::Drop ? WriteFault::Drop
                                           : WriteFault::Corrupt;
  }
  return WriteFault::None;
}

WorkerFaults workerFaultsFromEnv() {
  WorkerFaults out;
  const char* planText = std::getenv("HAYAT_FAULT_PLAN");
  const char* slotText = std::getenv("HAYAT_FAULT_WORKER");
  if (planText == nullptr || planText[0] == '\0' || slotText == nullptr ||
      slotText[0] == '\0')
    return out;
  const int slot = static_cast<int>(std::strtol(slotText, nullptr, 10));
  FaultPlan plan;
  try {
    plan = parseFaultPlan(planText);
  } catch (const Error& e) {
    // The coordinator validates the plan before any worker spawns; a
    // worker must never die on the env it inherited.
    std::fprintf(stderr, "hayat worker: ignoring fault plan: %s\n",
                 e.what());
    return out;
  }
  for (const FaultRule& r : plan.rules) {
    if (r.worker != slot) continue;
    switch (r.kind) {
      case FaultRule::Kind::Delay:
        out.delayMs = r.ms;
        break;
      case FaultRule::Kind::Die:
        out.dieAfter = r.after;
        break;
      case FaultRule::Kind::Stall:
        out.stallAfter = r.after;
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace hayat::engine
