// Spec-hash keyed on-disk result cache.
//
// Generalizes the old bench/sweep.cpp `hayat_sweep_cache.csv` hack: any
// ExperimentSpec's merged SweepTable is stored under
// `<dir>/<name>-<hash16>.csv` where hash16 is the 16-hex-digit specHash.
// The file embeds the full canonical signature, so a hash collision (or a
// stale file produced by a different spec version) is detected and
// treated as a miss instead of returning wrong results.  All doubles are
// serialized with %.17g, which round-trips IEEE-754 exactly — a cache hit
// reloads results bit-identical to the run that produced them.
//
// The cache directory defaults to `hayat_cache/` relative to the working
// directory (i.e. under build/ for the usual cmake workflow) and is
// overridden by HAYAT_CACHE_DIR.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "engine/engine.hpp"

namespace hayat::engine {

/// On-disk cache format version.  Every entry is stamped with it; loading
/// an entry written by a different format is a miss that also deletes the
/// stale file (see loadCachedTable).  v3: thermal solves moved to the
/// RCM-ordered sparse kernels, which shifts results at the last few ulps
/// — entries computed with the dense pre-sparse numerics must not be
/// served as hits.  v4: every record carries a failure section (the
/// Monte Carlo lifetime distribution, or "none" for point-MTTF runs), so
/// v3 readers and v4 files must never mix.
inline constexpr int kCacheFormatVersion = 4;

/// Canonical text record of one RunResult (identity columns + the full
/// lifetime trace, doubles at %.17g so values round-trip exactly).  The
/// cache files and the worker wire protocol (wire.hpp) share it.
void writeRunResult(std::ostream& out, const RunResult& result);

/// Reads one record written by writeRunResult; returns false on any
/// malformed input (and may leave `result` partially filled).
bool readRunResult(std::istream& in, RunResult& result);

/// Cache file path for a spec inside `dir`.
std::string cachePath(const std::string& dir, const ExperimentSpec& spec);

/// Cache file path from the entry identity alone (sanitized name +
/// hash16) — what a worker storing a pushed entry uses, since it has the
/// bytes and identity but not necessarily the expanded spec.
std::string cacheEntryPath(const std::string& dir, const std::string& name,
                           std::uint64_t hash);

/// Stores a cache entry pushed over the wire (wire.hpp CachePush):
/// validates the leading format-version magic, then writes the bytes
/// atomically (tmp + rename) under cacheEntryPath().  Returns false —
/// without touching the cache — on a version mismatch or any I/O
/// failure; the next loadCachedTable() still verifies the embedded
/// signature before serving it, so a hostile or stale push can waste
/// disk but never poison results.
bool storePushedCacheEntry(const std::string& dir, const std::string& name,
                           std::uint64_t hash, const std::string& fileBytes);

/// Loads the cached table for `spec`, or nullopt on miss (no file,
/// unreadable file, version or signature mismatch, or corruption).  A
/// file that exists but cannot serve the spec is an orphan — a previous
/// format, a hash collision, or a torn write — and is deleted so the
/// cache directory never accumulates entries nothing will ever read.
std::optional<SweepTable> loadCachedTable(const std::string& dir,
                                          const ExperimentSpec& spec);

/// Writes the table for `spec`, creating `dir` if needed.  Failures are
/// swallowed (the cache is best-effort); returns false on failure.
bool storeCachedTable(const std::string& dir, const ExperimentSpec& spec,
                      const SweepTable& table);

/// Outcome of one evictResultCache() pass.
struct CacheEvictionStats {
  std::uint64_t scannedFiles = 0;   ///< entries examined
  std::uint64_t scannedBytes = 0;   ///< their total size before eviction
  std::uint64_t evictedByAge = 0;   ///< entries older than maxAgeSeconds
  std::uint64_t evictedBySize = 0;  ///< entries dropped to meet maxBytes
  std::uint64_t evictedBytes = 0;   ///< bytes reclaimed
};

/// Deletes *valid* cache entries (orphans are already dropped on load) to
/// keep `dir` bounded: first every `.csv` entry whose mtime is older than
/// `maxAgeSeconds`, then oldest-first until the directory fits in
/// `maxBytes`.  Oldest-first means the entry just written by the current
/// run survives unless maxBytes is smaller than that single file.
/// `maxBytes == 0` disables the size bound.  `maxAgeSeconds` is a
/// tri-state: negative disables the age bound, exactly 0 evicts every
/// entry (the `--cache-max-age=0` flush idiom), positive evicts entries
/// older than the limit.  Missing directories are a no-op.
CacheEvictionStats evictResultCache(const std::string& dir,
                                    std::uint64_t maxBytes,
                                    double maxAgeSeconds);

}  // namespace hayat::engine
