#include "engine/experiment.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace hayat::engine {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void visitSystem(SystemConfig& c, SpecFieldVisitor& v) {
  PopulationConfig& p = c.population;
  // GridShape exposes no setters; rebuild it after the visit so a decoder
  // (or mutation test) can resize the grid.
  int rows = p.coreGrid.rows();
  int cols = p.coreGrid.cols();
  v.field("pop.rows", rows);
  v.field("pop.cols", cols);
  p.coreGrid = GridShape(rows, cols);
  v.field("pop.coreWidth", p.coreWidth);
  v.field("pop.coreHeight", p.coreHeight);
  v.field("pop.pointsPerCoreEdge", p.pointsPerCoreEdge);
  v.field("pop.nominalFrequency", p.nominalFrequency);
  v.field("pop.nominalVth", p.nominalVth);
  v.field("pop.sigmaFraction", p.sigmaFraction);
  v.field("pop.correlationRangeFraction", p.correlationRangeFraction);
  v.field("pop.globalFraction", p.globalFraction);
  v.field("pop.nuggetFraction", p.nuggetFraction);
  v.field("pop.subthresholdSlopeFactor", p.subthresholdSlopeFactor);
  v.field("pop.criticalPathPoints", p.criticalPathPoints);

  NbtiConfig& n = c.nbti;
  v.field("nbti.vdd", n.vdd);
  v.field("nbti.nominalVth", n.nominalVth);
  v.field("nbti.techScale", n.techScale);
  v.field("nbti.alphaPower", n.alphaPower);
  v.field("nbti.timeExponent", n.timeExponent);

  AgingTableConfig& a = c.agingTable;
  v.field("table.temperatureMin", a.temperatureMin);
  v.field("table.temperatureMax", a.temperatureMax);
  v.field("table.temperaturePoints", a.temperaturePoints);
  v.field("table.dutyPoints", a.dutyPoints);
  v.field("table.maxAge", a.maxAge);

  LeakageConfig& l = c.leakage;
  v.field("leak.nominalCoreLeakage", l.nominalCoreLeakage);
  v.field("leak.gatedCoreLeakage", l.gatedCoreLeakage);
  v.field("leak.referenceTemperature", l.referenceTemperature);
  v.field("leak.nominalVth", l.nominalVth);
  v.field("leak.subthresholdSlopeFactor", l.subthresholdSlopeFactor);

  // The thermal floorplan is overwritten from the population geometry at
  // System construction, so only the package parameters are walked.
  ThermalConfig& t = c.thermal;
  v.field("thermal.ambient", t.ambient);
  v.field("thermal.dieThickness", t.dieThickness);
  v.field("thermal.dieConductivity", t.dieConductivity);
  v.field("thermal.dieVolumetricHeat", t.dieVolumetricHeat);
  v.field("thermal.timThickness", t.timThickness);
  v.field("thermal.timConductivity", t.timConductivity);
  v.field("thermal.spreaderThickness", t.spreaderThickness);
  v.field("thermal.spreaderConductivity", t.spreaderConductivity);
  v.field("thermal.spreaderVolumetricHeat", t.spreaderVolumetricHeat);
  v.field("thermal.sinkThickness", t.sinkThickness);
  v.field("thermal.sinkConductivity", t.sinkConductivity);
  v.field("thermal.sinkVolumetricHeat", t.sinkVolumetricHeat);
  v.field("thermal.spreaderSinkResistancePerTile",
          t.spreaderSinkResistancePerTile);
  v.field("thermal.convectionResistance", t.convectionResistance);

  // EpochConfig minus thermalSensorSeed (derived per task, see the
  // header's seed rule).
  EpochConfig& e = c.epoch;
  v.field("epoch.window", e.window);
  v.field("epoch.step", e.step);
  v.field("epoch.nominalFrequency", e.nominalFrequency);
  v.field("epoch.dtm.tsafe", e.dtm.tsafe);
  v.field("epoch.dtm.coldMargin", e.dtm.coldMargin);
  v.field("epoch.dtm.throttleFactor", e.dtm.throttleFactor);
  v.field("epoch.dtm.minimumFrequency", e.dtm.minimumFrequency);
  v.field("epoch.dtm.migrationCooldownChecks", e.dtm.migrationCooldownChecks);
  v.field("epoch.sensor.gaussianSigma", e.thermalSensorNoise.gaussianSigma);
  v.field("epoch.sensor.quantization", e.thermalSensorNoise.quantization);

  v.field("pathsPerCore", c.pathsPerCore);
  v.field("elementsPerPath", c.elementsPerPath);
}

void visitLifetime(LifetimeConfig& c, SpecFieldVisitor& v) {
  // workloadSeed / sensorSeed are derived per task and excluded.
  v.field("life.horizon", c.horizon);
  v.field("life.epochLength", c.epochLength);
  v.field("life.tsafe", c.tsafe);
  v.field("life.nominalFrequency", c.nominalFrequency);
  v.field("life.freshMixEachEpoch", c.freshMixEachEpoch);
  v.field("life.mixChurn", c.mixChurn);
  v.field("life.incrementalRemap", c.incrementalRemap);
  v.field("life.healthSensor.gaussianSigma", c.healthSensorNoise.gaussianSigma);
  v.field("life.healthSensor.quantization", c.healthSensorNoise.quantization);

  int dvfsLevels = c.dvfs.has_value() ? c.dvfs->levelCount() : 0;
  v.field("life.dvfs.levels", dvfsLevels);
  std::vector<Hertz> levels;
  for (int i = 0; c.dvfs.has_value() && i < c.dvfs->levelCount(); ++i)
    levels.push_back(c.dvfs->level(i));
  levels.resize(static_cast<std::size_t>(dvfsLevels < 0 ? 0 : dvfsLevels),
                3.0e9);
  for (Hertz& level : levels) v.field("life.dvfs.level", level);
  if (levels.empty())
    c.dvfs.reset();
  else
    c.dvfs = FrequencyLadder(levels);

  // Failure Monte Carlo knobs (DESIGN.md §3.14).  samples flips the run
  // into distribution mode, so a distribution spec can never share a
  // signature — or a cache slot — with its point-MTTF twin.  failure.seed
  // is derived per task (SeedStream::Failure) and excluded.
  FailureConfig& f = c.failure;
  v.field("life.failure.samples", f.samples);
  v.field("life.failure.weibullShape", f.weibullShape);
  v.field("life.failure.minAliveCoreFraction", f.minAliveCoreFraction);
  v.field("life.failure.em.activationEnergyEv", f.em.activationEnergyEv);
  v.field("life.failure.em.currentExponent", f.em.currentExponent);
  v.field("life.failure.em.referenceMttfYears", f.em.referenceMttfYears);
  v.field("life.failure.em.referenceTemperature", f.em.referenceTemperature);
  v.field("life.failure.em.referenceCurrentFactor",
          f.em.referenceCurrentFactor);
  v.field("life.failure.tddb.activationEnergyEv", f.tddb.activationEnergyEv);
  v.field("life.failure.tddb.voltageExponent", f.tddb.voltageExponent);
  v.field("life.failure.tddb.vdd", f.tddb.vdd);
  v.field("life.failure.tddb.referenceVdd", f.tddb.referenceVdd);
  v.field("life.failure.tddb.referenceMttfYears", f.tddb.referenceMttfYears);
  v.field("life.failure.tddb.referenceTemperature",
          f.tddb.referenceTemperature);

  // A fixed mix cannot be canonically serialized here; walk its presence
  // (as the application count) so two specs differing only in the mix
  // never share a signature silently.  The engine additionally disables
  // the result cache and distributed dispatch for fixed-mix specs.
  int mixApps = c.fixedMix.has_value()
                    ? static_cast<int>(c.fixedMix->applications.size())
                    : 0;
  v.field("life.fixedMix", mixApps);
  if (mixApps == 0) {
    c.fixedMix.reset();
  } else {
    HAYAT_REQUIRE(c.fixedMix.has_value(),
                  "a fixed workload mix cannot be reconstructed from its "
                  "application count (fixedMix specs are not serializable)");
  }
}

/// Appends `key=value` with full round-trip precision for doubles.
class SignatureWriter final : public SpecFieldVisitor {
 public:
  void field(const char* key, double& value) override {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ << key << '=' << buf << '\n';
  }
  void field(const char* key, int& value) override {
    out_ << key << '=' << value << '\n';
  }
  void field(const char* key, bool& value) override {
    out_ << key << '=' << (value ? 1 : 0) << '\n';
  }
  void field(const char* key, std::uint64_t& value) override {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ << key << '=' << buf << '\n';
  }
  void field(const char* key, std::string& value) override {
    out_ << key << '=' << value << '\n';
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

}  // namespace

void visitSpecFields(ExperimentSpec& spec, SpecFieldVisitor& v) {
  v.field("populationSeed", spec.populationSeed);
  v.field("baseSeed", spec.baseSeed);
  v.field("repetitions", spec.repetitions);
  v.field("policyPrune", spec.policyPrune);

  int chipCount = static_cast<int>(spec.chips.size());
  v.field("chips.count", chipCount);
  spec.chips.resize(static_cast<std::size_t>(chipCount < 0 ? 0 : chipCount),
                    0);
  for (int& chip : spec.chips) v.field("chip", chip);

  int darkCount = static_cast<int>(spec.darkFractions.size());
  v.field("darks.count", darkCount);
  spec.darkFractions.resize(
      static_cast<std::size_t>(darkCount < 0 ? 0 : darkCount), 0.5);
  for (double& dark : spec.darkFractions) v.field("dark", dark);

  int policyCount = static_cast<int>(spec.policies.size());
  v.field("policies.count", policyCount);
  spec.policies.resize(
      static_cast<std::size_t>(policyCount < 0 ? 0 : policyCount));
  for (PolicySpec& policy : spec.policies) {
    v.field("policy.name", policy.name);
    int paramCount = static_cast<int>(policy.params.size());
    v.field("policy.params", paramCount);
    // Maps have no positional access; visit (key, value) pairs through a
    // scratch vector and rebuild, so a decoder can repopulate them.
    std::vector<std::pair<std::string, double>> params(policy.params.begin(),
                                                       policy.params.end());
    params.resize(static_cast<std::size_t>(paramCount < 0 ? 0 : paramCount),
                  {"knob", 0.0});
    policy.params.clear();
    for (auto& [key, value] : params) {
      v.field("policy.param.key", key);
      v.field("policy.param.value", value);
      policy.params[key] = value;
    }
  }

  visitSystem(spec.system, v);
  visitLifetime(spec.lifetime, v);
}

std::uint64_t deriveSeed(std::uint64_t baseSeed, int chip, int repetition,
                         SeedStream stream) {
  const std::uint64_t lane =
      std::uint64_t{0x100000001} * static_cast<std::uint64_t>(stream) +
      std::uint64_t{0x10001} * static_cast<std::uint64_t>(chip) +
      static_cast<std::uint64_t>(repetition);
  return splitmix64(baseSeed ^ splitmix64(lane));
}

std::string specSignature(const ExperimentSpec& spec) {
  ExperimentSpec copy = spec;  // the walk takes mutable refs; keep callers const
  SignatureWriter w;
  // v4: the failure Monte Carlo knobs joined the walk (§3.14) — cached
  // v3 point-MTTF tables must not shadow distribution-mode results.
  int version = 4;
  w.field("spec.version", version);
  visitSpecFields(copy, w);
  return w.str();
}

int parsePolicyPrune(const std::string& prune) {
  if (prune.empty()) return 0;
  const std::string prefix = "radius:";
  HAYAT_REQUIRE(prune.rfind(prefix, 0) == 0,
                "policy-prune must be \"\" or \"radius:R\" (R >= 1 or inf)");
  const std::string arg = prune.substr(prefix.size());
  if (arg == "inf") return std::numeric_limits<int>::max();
  HAYAT_REQUIRE(!arg.empty() &&
                    arg.find_first_not_of("0123456789") == std::string::npos,
                "policy-prune radius must be a positive integer or \"inf\"");
  const long radius = std::strtol(arg.c_str(), nullptr, 10);
  HAYAT_REQUIRE(radius >= 1 && radius <= std::numeric_limits<int>::max(),
                "policy-prune radius must be >= 1");
  return static_cast<int>(radius);
}

PolicySpec effectiveTaskPolicy(const ExperimentSpec& spec,
                               const PolicySpec& policy) {
  PolicySpec effective = policy;
  const int pruneRadius = parsePolicyPrune(spec.policyPrune);
  if (pruneRadius > 0 && policy.name == "Hayat" &&
      !effective.params.count("pruneRadius")) {
    effective.params["pruneRadius"] = static_cast<double>(pruneRadius);
  }
  return effective;
}

std::uint64_t specHash(const ExperimentSpec& spec) {
  const std::string sig = specSignature(spec);
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (const char ch : sig) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

}  // namespace hayat::engine
