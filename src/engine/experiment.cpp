#include "engine/experiment.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace hayat::engine {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Appends `key=value` with full round-trip precision for doubles.
class SignatureWriter {
 public:
  void add(const char* key, double value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ << key << '=' << buf << '\n';
  }
  void add(const char* key, int value) { out_ << key << '=' << value << '\n'; }
  void add(const char* key, long value) {
    out_ << key << '=' << value << '\n';
  }
  void add(const char* key, bool value) {
    out_ << key << '=' << (value ? 1 : 0) << '\n';
  }
  void add(const char* key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ << key << '=' << buf << '\n';
  }
  void add(const char* key, const std::string& value) {
    out_ << key << '=' << value << '\n';
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

void writeSystem(SignatureWriter& w, const SystemConfig& c) {
  const PopulationConfig& p = c.population;
  w.add("pop.rows", p.coreGrid.rows());
  w.add("pop.cols", p.coreGrid.cols());
  w.add("pop.coreWidth", p.coreWidth);
  w.add("pop.coreHeight", p.coreHeight);
  w.add("pop.pointsPerCoreEdge", p.pointsPerCoreEdge);
  w.add("pop.nominalFrequency", p.nominalFrequency);
  w.add("pop.nominalVth", p.nominalVth);
  w.add("pop.sigmaFraction", p.sigmaFraction);
  w.add("pop.correlationRangeFraction", p.correlationRangeFraction);
  w.add("pop.globalFraction", p.globalFraction);
  w.add("pop.nuggetFraction", p.nuggetFraction);
  w.add("pop.subthresholdSlopeFactor", p.subthresholdSlopeFactor);
  w.add("pop.criticalPathPoints", p.criticalPathPoints);

  const NbtiConfig& n = c.nbti;
  w.add("nbti.vdd", n.vdd);
  w.add("nbti.nominalVth", n.nominalVth);
  w.add("nbti.techScale", n.techScale);
  w.add("nbti.alphaPower", n.alphaPower);
  w.add("nbti.timeExponent", n.timeExponent);

  const AgingTableConfig& a = c.agingTable;
  w.add("table.temperatureMin", a.temperatureMin);
  w.add("table.temperatureMax", a.temperatureMax);
  w.add("table.temperaturePoints", a.temperaturePoints);
  w.add("table.dutyPoints", a.dutyPoints);
  w.add("table.maxAge", a.maxAge);

  const LeakageConfig& l = c.leakage;
  w.add("leak.nominalCoreLeakage", l.nominalCoreLeakage);
  w.add("leak.gatedCoreLeakage", l.gatedCoreLeakage);
  w.add("leak.referenceTemperature", l.referenceTemperature);
  w.add("leak.nominalVth", l.nominalVth);
  w.add("leak.subthresholdSlopeFactor", l.subthresholdSlopeFactor);

  // The thermal floorplan is overwritten from the population geometry at
  // System construction, so only the package parameters are hashed.
  const ThermalConfig& t = c.thermal;
  w.add("thermal.ambient", t.ambient);
  w.add("thermal.dieThickness", t.dieThickness);
  w.add("thermal.dieConductivity", t.dieConductivity);
  w.add("thermal.dieVolumetricHeat", t.dieVolumetricHeat);
  w.add("thermal.timThickness", t.timThickness);
  w.add("thermal.timConductivity", t.timConductivity);
  w.add("thermal.spreaderThickness", t.spreaderThickness);
  w.add("thermal.spreaderConductivity", t.spreaderConductivity);
  w.add("thermal.spreaderVolumetricHeat", t.spreaderVolumetricHeat);
  w.add("thermal.sinkThickness", t.sinkThickness);
  w.add("thermal.sinkConductivity", t.sinkConductivity);
  w.add("thermal.sinkVolumetricHeat", t.sinkVolumetricHeat);
  w.add("thermal.spreaderSinkResistancePerTile",
        t.spreaderSinkResistancePerTile);
  w.add("thermal.convectionResistance", t.convectionResistance);

  // EpochConfig minus thermalSensorSeed (derived per task, see the
  // header's seed rule).
  const EpochConfig& e = c.epoch;
  w.add("epoch.window", e.window);
  w.add("epoch.step", e.step);
  w.add("epoch.nominalFrequency", e.nominalFrequency);
  w.add("epoch.dtm.tsafe", e.dtm.tsafe);
  w.add("epoch.dtm.coldMargin", e.dtm.coldMargin);
  w.add("epoch.dtm.throttleFactor", e.dtm.throttleFactor);
  w.add("epoch.dtm.minimumFrequency", e.dtm.minimumFrequency);
  w.add("epoch.dtm.migrationCooldownChecks", e.dtm.migrationCooldownChecks);
  w.add("epoch.sensor.gaussianSigma", e.thermalSensorNoise.gaussianSigma);
  w.add("epoch.sensor.quantization", e.thermalSensorNoise.quantization);

  w.add("pathsPerCore", c.pathsPerCore);
  w.add("elementsPerPath", c.elementsPerPath);
}

void writeLifetime(SignatureWriter& w, const LifetimeConfig& c) {
  // workloadSeed / sensorSeed are derived per task and excluded.
  w.add("life.horizon", c.horizon);
  w.add("life.epochLength", c.epochLength);
  w.add("life.tsafe", c.tsafe);
  w.add("life.nominalFrequency", c.nominalFrequency);
  w.add("life.freshMixEachEpoch", c.freshMixEachEpoch);
  w.add("life.mixChurn", c.mixChurn);
  w.add("life.incrementalRemap", c.incrementalRemap);
  w.add("life.healthSensor.gaussianSigma", c.healthSensorNoise.gaussianSigma);
  w.add("life.healthSensor.quantization", c.healthSensorNoise.quantization);
  if (c.dvfs.has_value()) {
    w.add("life.dvfs.levels", c.dvfs->levelCount());
    for (int i = 0; i < c.dvfs->levelCount(); ++i)
      w.add("life.dvfs.level", c.dvfs->level(i));
  } else {
    w.add("life.dvfs.levels", 0);
  }
  // A fixed mix cannot be canonically serialized here; mark its presence
  // so two specs differing only in the mix never share a hash silently.
  // The engine additionally disables the result cache for fixed-mix
  // specs (engine.cpp).
  w.add("life.fixedMix",
        c.fixedMix.has_value()
            ? static_cast<int>(c.fixedMix->applications.size())
            : 0);
}

}  // namespace

std::uint64_t deriveSeed(std::uint64_t baseSeed, int chip, int repetition,
                         SeedStream stream) {
  const std::uint64_t lane =
      std::uint64_t{0x100000001} * static_cast<std::uint64_t>(stream) +
      std::uint64_t{0x10001} * static_cast<std::uint64_t>(chip) +
      static_cast<std::uint64_t>(repetition);
  return splitmix64(baseSeed ^ splitmix64(lane));
}

std::string specSignature(const ExperimentSpec& spec) {
  SignatureWriter w;
  w.add("spec.version", 1);
  w.add("populationSeed", spec.populationSeed);
  w.add("baseSeed", spec.baseSeed);
  w.add("repetitions", spec.repetitions);
  w.add("chips.count", static_cast<int>(spec.chips.size()));
  for (int c : spec.chips) w.add("chip", c);
  w.add("darks.count", static_cast<int>(spec.darkFractions.size()));
  for (double d : spec.darkFractions) w.add("dark", d);
  w.add("policies.count", static_cast<int>(spec.policies.size()));
  for (const PolicySpec& p : spec.policies) {
    w.add("policy.name", p.name);
    for (const auto& [key, value] : p.params)
      w.add(("policy.param." + key).c_str(), value);
  }
  writeSystem(w, spec.system);
  writeLifetime(w, spec.lifetime);
  return w.str();
}

std::uint64_t specHash(const ExperimentSpec& spec) {
  const std::string sig = specSignature(spec);
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (const char ch : sig) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

}  // namespace hayat::engine
