#include "engine/dispatcher.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "engine/fault.hpp"
#include "engine/task_pool.hpp"
#include "engine/wire.hpp"
#include "engine/worker_proc.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace hayat::engine {

namespace {

/// Mirrors a DispatchStats increment into a named telemetry counter so
/// retry/respawn/timeout bookkeeping shows up in exported metrics.
void countDispatch(const char* name) {
  if (!telemetry::enabled()) return;
  telemetry::Registry::global().counter(name).add();
}

void ignoreSigpipe() {
  struct sigaction sa;
  if (::sigaction(SIGPIPE, nullptr, &sa) == 0 && sa.sa_handler == SIG_DFL) {
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  }
}

int parsePositiveInt(const std::string& text, const char* what) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  HAYAT_REQUIRE(end == text.c_str() + text.size() && !text.empty() &&
                    value >= 1,
                std::string("worker spec: bad ") + what + " '" + text + "'");
  return static_cast<int>(value);
}

std::string execBinary() {
  if (const char* bin = std::getenv("HAYAT_WORKER_BIN"))
    if (*bin) return bin;
  return "hayat";
}

}  // namespace

std::vector<WorkerEndpoint> parseWorkerSpec(const std::string& text) {
  std::vector<WorkerEndpoint> endpoints;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (item.empty()) continue;

    WorkerEndpoint ep;
    if (item == "proc" || item.rfind("proc:", 0) == 0) {
      ep.kind = WorkerEndpoint::Kind::Fork;
      ep.count =
          item == "proc" ? 1 : parsePositiveInt(item.substr(5), "count");
    } else if (item == "exec" || item.rfind("exec:", 0) == 0) {
      ep.kind = WorkerEndpoint::Kind::Exec;
      ep.count =
          item == "exec" ? 1 : parsePositiveInt(item.substr(5), "count");
    } else if (item.rfind("tcp:", 0) == 0) {
      ep.kind = WorkerEndpoint::Kind::Tcp;
      const std::string rest = item.substr(4);
      const std::size_t colon = rest.rfind(':');
      HAYAT_REQUIRE(colon != std::string::npos && colon > 0,
                    "worker spec: tcp endpoint needs host:port, got '" +
                        item + "'");
      ep.host = rest.substr(0, colon);
      ep.port = parsePositiveInt(rest.substr(colon + 1), "port");
      HAYAT_REQUIRE(ep.port <= 65535,
                    "worker spec: port out of range in '" + item + "'");
    } else {
      throw Error("worker spec: unknown endpoint '" + item +
                  "' (expected proc:N, exec:N, or tcp:host:port)");
    }
    endpoints.push_back(std::move(ep));
  }
  HAYAT_REQUIRE(!endpoints.empty(), "worker spec: no endpoints in '" + text +
                                        "'");
  return endpoints;
}

Dispatcher::Dispatcher(DispatchConfig config) : config_(std::move(config)) {
  ignoreSigpipe();
  // Install the coordinator side of any fault plan now, resetting the
  // frame counter, so a fixed plan names the same frames on every run of
  // this dispatcher.  Worker-side rules travel via the environment.
  std::string planText = config_.faultPlan;
  if (planText.empty())
    if (const char* env = std::getenv("HAYAT_FAULT_PLAN")) planText = env;
  if (!planText.empty()) {
    installCoordinatorFaults(parseFaultPlan(planText));
    faultsInstalled_ = true;
  }
}

Dispatcher::~Dispatcher() {
  shutdown();
  if (faultsInstalled_) clearCoordinatorFaults();
}

bool Dispatcher::spawn(Worker& worker, int slot) {
  int fd = -1;
  pid_t pid = -1;
  switch (worker.endpoint.kind) {
    case WorkerEndpoint::Kind::Fork: {
      // Children must not keep sibling sockets open, or a sibling's EOF
      // would never be observed.
      std::vector<int> siblings;
      for (const Worker& other : workers_)
        if (other.fd >= 0) siblings.push_back(other.fd);
      pid = spawnForkWorker(fd, siblings, slot);
      break;
    }
    case WorkerEndpoint::Kind::Exec:
      pid = spawnExecWorker(execBinary(), fd, slot);
      break;
    case WorkerEndpoint::Kind::Tcp:
      fd = connectTcpWorker(worker.endpoint.host, worker.endpoint.port,
                            config_.connectTimeoutMs);
      break;
  }
  if (fd < 0) return false;
  ++stats_.workersSpawned;
  countDispatch("hayat_dispatch_workers_spawned_total");

  // TelemetryOn follows the spec (not embedded in it) so the hashed spec
  // payload — and with it the task-partitioning key — is identical with
  // telemetry on or off.
  if (!writeMessage(fd, MsgType::Spec, specPayload_) ||
      (telemetry::enabled() &&
       !writeMessage(fd, MsgType::TelemetryOn, ""))) {
    ::close(fd);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    return false;
  }
  worker.fd = fd;
  worker.pid = pid;
  worker.queue.clear();
  return true;
}

void Dispatcher::reap(Worker& worker, bool force) {
  if (worker.pid <= 0) return;
  if (force) ::kill(worker.pid, SIGKILL);
  ::waitpid(worker.pid, nullptr, 0);
  worker.pid = -1;
}

bool Dispatcher::assignedElsewhere(int index, const Worker* except) const {
  for (const Worker& w : workers_) {
    if (&w == except || w.fd < 0) continue;
    if (std::find(w.queue.begin(), w.queue.end(), index) != w.queue.end())
      return true;
  }
  return false;
}

void Dispatcher::resolveQueued(Worker& worker, int index) {
  const auto it =
      std::find(worker.queue.begin(), worker.queue.end(), index);
  if (it == worker.queue.end()) return;
  const bool wasHead = it == worker.queue.begin();
  worker.queue.erase(it);
  if (wasHead && !worker.queue.empty()) worker.headSince = Clock::now();
}

void Dispatcher::markDead(Worker& worker, const std::vector<char>& have,
                          std::vector<int>& pending,
                          std::vector<int>& attempts,
                          std::vector<int>& local) {
  ++stats_.workerDeaths;
  countDispatch("hayat_dispatch_worker_deaths_total");
  for (const int index : worker.queue) {
    if (index < 0 || static_cast<std::size_t>(index) >= have.size())
      continue;
    if (have[static_cast<std::size_t>(index)]) continue;
    // A stolen copy of this index may still be running on a live worker;
    // re-queueing it here would triple-compute it for nothing.
    if (assignedElsewhere(index, &worker)) continue;
    ++attempts[static_cast<std::size_t>(index)];
    ++stats_.tasksRetried;
    countDispatch("hayat_dispatch_tasks_retried_total");
    if (attempts[static_cast<std::size_t>(index)] > config_.maxTaskRetries)
      local.push_back(index);
    else
      pending.push_back(index);
  }
  worker.queue.clear();
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  reap(worker, /*force=*/true);
  ++worker.deaths;
  const double backoff =
      config_.respawnBackoffSeconds *
      static_cast<double>(1 << std::min(worker.deaths - 1, 6));
  worker.nextRespawn =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(backoff));
}

void Dispatcher::stealTasks(const std::vector<char>& have,
                            std::vector<int>& stolen,
                            std::vector<int>& pending,
                            std::vector<int>& attempts,
                            std::vector<int>& local) {
  if (workers_.size() < 2) return;
  const auto now = Clock::now();
  const int stealCap = static_cast<int>(workers_.size());
  const auto headAfter = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.stealHeadAfterSeconds));

  for (Worker& thief : workers_) {
    if (thief.fd < 0 || !thief.queue.empty()) continue;

    // Preferred: take the tail (not-yet-started) task of the deepest
    // queue.  The bookkeeping moves with it — the victim will still
    // compute the task (it already crossed the wire), but the first
    // Result to arrive wins and the duplicate is dropped by index.
    int index = -1;
    {
      std::vector<Worker*> victims;
      for (Worker& v : workers_)
        if (&v != &thief && v.fd >= 0 && v.queue.size() >= 2)
          victims.push_back(&v);
      std::stable_sort(victims.begin(), victims.end(),
                       [](const Worker* a, const Worker* b) {
                         return a->queue.size() > b->queue.size();
                       });
      for (Worker* victim : victims) {
        // Tails satisfied by a duplicate elsewhere are dead bookkeeping;
        // shed them while looking for a live candidate.
        while (victim->queue.size() >= 2 &&
               have[static_cast<std::size_t>(victim->queue.back())])
          victim->queue.pop_back();
        if (victim->queue.size() < 2) continue;
        const int candidate = victim->queue.back();
        if (stolen[static_cast<std::size_t>(candidate)] >= stealCap)
          continue;
        victim->queue.pop_back();
        index = candidate;
        break;
      }
    }

    // Fallback: past the configured patience, speculatively re-dispatch
    // the oldest stalled *head* — the victim keeps its copy (it is still
    // presumed computing), so this is a deliberate duplicate.
    if (index < 0 && config_.stealHeadAfterSeconds > 0.0) {
      Worker* victim = nullptr;
      for (Worker& v : workers_) {
        if (&v == &thief || v.fd < 0 || v.queue.empty()) continue;
        if (now - v.headSince < headAfter) continue;
        const int candidate = v.queue.front();
        if (have[static_cast<std::size_t>(candidate)] ||
            stolen[static_cast<std::size_t>(candidate)] >= stealCap)
          continue;
        if (victim == nullptr || v.headSince < victim->headSince)
          victim = &v;
      }
      if (victim != nullptr) index = victim->queue.front();
    }
    if (index < 0) continue;

    ++stolen[static_cast<std::size_t>(index)];
    thief.queue.push_back(index);
    thief.headSince = now;
    ++stats_.tasksStolen;
    countDispatch("hayat_dispatch_steals_total");
    if (writeMessage(thief.fd, MsgType::Task,
                     encodeTask(index, specHash_))) {
      ++stats_.tasksDispatched;
      countDispatch("hayat_dispatch_tasks_dispatched_total");
    } else {
      markDead(thief, have, pending, attempts, local);
    }
  }
}

int Dispatcher::connect(const ExperimentSpec& spec) {
  if (connected_) {
    int alive = 0;
    for (const Worker& w : workers_)
      if (w.fd >= 0) ++alive;
    return alive;
  }
  specPayload_ = encodeSpec(spec);
  specHash_ = specHash(spec);

  workers_.clear();
  for (const WorkerEndpoint& ep : config_.endpoints) {
    const int slots = ep.kind == WorkerEndpoint::Kind::Tcp ? 1 : ep.count;
    for (int i = 0; i < slots; ++i) {
      Worker w;
      w.endpoint = ep;
      w.endpoint.count = 1;
      workers_.push_back(std::move(w));
    }
  }

  int alive = 0;
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    Worker& w = workers_[slot];
    if (spawn(w, static_cast<int>(slot))) {
      ++stats_.workersConnected;
      countDispatch("hayat_dispatch_workers_connected_total");
      ++alive;
    } else {
      // Unreachable at startup: eligible for the run loop's backoff
      // respawn path, like any other death.
      ++w.deaths;
      w.nextRespawn = Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              config_.respawnBackoffSeconds));
    }
  }
  connected_ = true;
  return alive;
}

std::vector<RunResult> Dispatcher::run(const ExperimentSpec& spec,
                                       const std::vector<RunTask>& tasks) {
  if (!connected_) connect(spec);

  const std::size_t n = tasks.size();
  std::vector<RunResult> results(n);
  std::vector<char> have(n, 0);
  std::vector<int> attempts(n, 0);
  std::vector<int> stolen(n, 0);
  std::vector<int> pending;
  pending.reserve(n);
  for (std::size_t i = n; i > 0; --i)
    pending.push_back(static_cast<int>(i - 1));  // pop_back serves 0 first
  std::vector<int> local;
  std::size_t done = 0;

  const int queueDepth = std::max(1, config_.workerQueueDepth);
  const auto taskTimeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.taskTimeoutSeconds));

  while (done + local.size() < n) {
    const auto now = Clock::now();

    // Work a *new* worker could take: pending tasks, or queued/stalled
    // tasks on a sibling it could steal.
    bool workRemains = !pending.empty();
    if (!workRemains) {
      for (const Worker& w : workers_) {
        if (w.fd < 0) continue;
        if (w.queue.size() >= 2 ||
            (config_.stealHeadAfterSeconds > 0.0 && !w.queue.empty())) {
          workRemains = true;
          break;
        }
      }
    }

    // Respawn dead slots that are due, while work remains for them.
    bool anyAlive = false;
    bool anyRespawnable = false;
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (w.fd >= 0) {
        anyAlive = true;
        continue;
      }
      if (w.deaths > config_.maxRespawns) continue;
      anyRespawnable = true;
      if (workRemains && now >= w.nextRespawn) {
        if (spawn(w, static_cast<int>(slot))) {
          ++stats_.workerRespawns;
          countDispatch("hayat_dispatch_worker_respawns_total");
          anyAlive = true;
        } else {
          ++w.deaths;
          const double backoff =
              config_.respawnBackoffSeconds *
              static_cast<double>(1 << std::min(w.deaths - 1, 6));
          w.nextRespawn = now + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(backoff));
        }
      }
    }
    if (!anyAlive && !anyRespawnable) break;  // fleet is gone; go local
    if (!anyAlive) {
      // Everything is dead but respawnable: sleep until the earliest
      // respawn instead of spinning.
      auto wake = Clock::time_point::max();
      for (const Worker& w : workers_)
        if (w.fd < 0 && w.deaths <= config_.maxRespawns)
          wake = std::min(wake, w.nextRespawn);
      std::this_thread::sleep_until(std::min(
          wake, Clock::now() + std::chrono::milliseconds(200)));
      continue;
    }

    // Fill worker queues from the pending list.
    for (Worker& w : workers_) {
      while (w.fd >= 0 &&
             w.queue.size() < static_cast<std::size_t>(queueDepth) &&
             !pending.empty()) {
        const int index = pending.back();
        pending.pop_back();
        // Stale entries: satisfied while queued, or re-queued while a
        // stolen copy still runs elsewhere (that owner resolves it).
        if (have[static_cast<std::size_t>(index)] ||
            assignedElsewhere(index, nullptr))
          continue;
        w.queue.push_back(index);
        if (w.queue.size() == 1) w.headSince = Clock::now();
        if (writeMessage(w.fd, MsgType::Task,
                         encodeTask(index, specHash_))) {
          ++stats_.tasksDispatched;
          countDispatch("hayat_dispatch_tasks_dispatched_total");
        } else {
          markDead(w, have, pending, attempts, local);  // re-queues it
        }
      }
    }

    // Only once the pending list is drained is imbalance worth fixing.
    if (pending.empty()) stealTasks(have, stolen, pending, attempts, local);

    if (telemetry::enabled()) {
      static telemetry::Gauge& queueDepthGauge =
          telemetry::Registry::global().gauge("hayat_dispatch_pending_tasks");
      queueDepthGauge.set(static_cast<double>(pending.size()));
      static telemetry::Gauge& inflightGauge =
          telemetry::Registry::global().gauge(
              "hayat_dispatch_inflight_tasks");
      double inflight = 0.0;
      for (const Worker& w : workers_)
        if (w.fd >= 0) inflight += static_cast<double>(w.queue.size());
      inflightGauge.set(inflight);
    }

    std::vector<struct pollfd> pfds;
    std::vector<Worker*> polled;
    for (Worker& w : workers_) {
      if (w.fd < 0) continue;
      pfds.push_back({w.fd, POLLIN, 0});
      polled.push_back(&w);
    }
    if (pfds.empty()) continue;

    // Wake for the earliest head-task deadline or respawn due date.
    int timeoutMs = 200;
    for (const Worker& w : workers_) {
      if (w.fd >= 0 && !w.queue.empty()) {
        const auto left = (w.headSince + taskTimeout) - Clock::now();
        timeoutMs = std::min(
            timeoutMs,
            static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(left)
                    .count()));
      }
    }
    timeoutMs = std::max(timeoutMs, 10);

    const int ready = ::poll(pfds.data(), pfds.size(), timeoutMs);
    if (ready > 0) {
      for (std::size_t p = 0; p < pfds.size(); ++p) {
        if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Worker& w = *polled[p];
        if (w.fd < 0) continue;  // killed earlier in this sweep of pfds
        Message msg;
        if (!readMessage(w.fd, msg)) {
          markDead(w, have, pending, attempts, local);
          continue;
        }
        if (msg.type == MsgType::Result) {
          int index = -1;
          RunResult result;
          telemetry::MetricDeltas deltas;
          try {
            decodeResult(msg.payload, index, result, &deltas);
          } catch (const std::exception&) {
            markDead(w, have, pending, attempts, local);
            continue;
          }
          if (!deltas.counters.empty())
            telemetry::mergeWorkerCounters(deltas.counters);
          if (!deltas.histograms.empty())
            telemetry::mergeWorkerHistograms(deltas.histograms);
          resolveQueued(w, index);
          if (index >= 0 && static_cast<std::size_t>(index) < n) {
            if (!have[static_cast<std::size_t>(index)]) {
              results[static_cast<std::size_t>(index)] = std::move(result);
              have[static_cast<std::size_t>(index)] = 1;
              ++done;
              ++stats_.tasksCompletedRemotely;
              countDispatch("hayat_dispatch_tasks_completed_remote_total");
            } else {
              // The losing copy of a stolen task: same index, and (by
              // the deterministic task contract) byte-identical payload.
              ++stats_.duplicateResults;
              countDispatch("hayat_dispatch_duplicate_results_total");
            }
          }
        } else if (msg.type == MsgType::TaskError) {
          int index = -1;
          std::string error;
          try {
            decodeTaskError(msg.payload, index, error);
          } catch (const std::exception&) {
            markDead(w, have, pending, attempts, local);
            continue;
          }
          resolveQueued(w, index);
          if (index >= 0 && static_cast<std::size_t>(index) < n &&
              !have[static_cast<std::size_t>(index)]) {
            std::fprintf(stderr, "[dispatch] task %d failed remotely: %s\n",
                         index, error.c_str());
            ++attempts[static_cast<std::size_t>(index)];
            ++stats_.tasksRetried;
            if (attempts[static_cast<std::size_t>(index)] >
                config_.maxTaskRetries)
              local.push_back(index);
            else
              pending.push_back(index);
          }
        } else {
          markDead(w, have, pending, attempts, local);  // protocol violation
        }
      }
    }

    // Per-task timeout: a worker whose *head* task has been in flight
    // too long is presumed wedged — kill it and re-queue its queue.
    const auto checkpoint = Clock::now();
    for (Worker& w : workers_) {
      if (w.fd >= 0 && !w.queue.empty() &&
          checkpoint - w.headSince > taskTimeout) {
        std::fprintf(stderr,
                     "[dispatch] task %d timed out on worker pid %d; "
                     "re-queueing\n",
                     w.queue.front(), static_cast<int>(w.pid));
        countDispatch("hayat_dispatch_task_timeouts_total");
        markDead(w, have, pending, attempts, local);
      }
    }
  }

  // Last resort: anything unfinished (degraded fleet or retry-exhausted
  // tasks) runs on the local thread pool; a deterministic task error can
  // finally propagate to the caller from here.
  std::vector<int> remaining;
  for (std::size_t i = 0; i < n; ++i)
    if (!have[i]) remaining.push_back(static_cast<int>(i));
  if (!remaining.empty()) {
    const int localWorkers = config_.localFallbackWorkers > 0
                                 ? config_.localFallbackWorkers
                                 : defaultWorkerCount();
    std::vector<RunResult> localResults = parallelMap<RunResult>(
        static_cast<int>(remaining.size()), localWorkers, [&](int k) {
          const int index = remaining[static_cast<std::size_t>(k)];
          return ExperimentEngine::runTask(
              tasks[static_cast<std::size_t>(index)], spec.populationSeed);
        });
    for (std::size_t k = 0; k < remaining.size(); ++k) {
      results[static_cast<std::size_t>(remaining[k])] =
          std::move(localResults[k]);
      have[static_cast<std::size_t>(remaining[k])] = 1;
      ++stats_.tasksCompletedLocally;
      countDispatch("hayat_dispatch_tasks_completed_local_total");
    }
  }
  return results;
}

int Dispatcher::pushCacheEntry(const std::string& specName,
                               std::uint64_t hash,
                               const std::string& fileBytes) {
  const std::string payload = encodeCachePush(specName, hash, fileBytes);
  int sent = 0;
  for (Worker& w : workers_) {
    if (w.fd < 0 || w.endpoint.kind != WorkerEndpoint::Kind::Tcp) continue;
    if (writeMessage(w.fd, MsgType::CachePush, payload)) {
      ++sent;
      ++stats_.cachePushes;
      countDispatch("hayat_dispatch_cache_pushes_total");
    }
    // A failed push is not a death sentence here: the next run-loop or
    // shutdown interaction with this fd detects the broken pipe.
  }
  return sent;
}

void Dispatcher::shutdown() {
  for (Worker& w : workers_) {
    if (w.fd >= 0) {
      writeMessage(w.fd, MsgType::Shutdown, "");
      ::close(w.fd);
      w.fd = -1;
    }
  }
  for (Worker& w : workers_) {
    if (w.pid <= 0) continue;
    // Give the worker a moment to exit on the Shutdown message, then
    // force the issue (a wedged worker would otherwise hang us here).
    bool reaped = false;
    for (int i = 0; i < 200 && !reaped; ++i) {
      if (::waitpid(w.pid, nullptr, WNOHANG) != 0)
        reaped = true;
      else
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) reap(w, /*force=*/true);
    w.pid = -1;
  }
  connected_ = false;
}

}  // namespace hayat::engine
