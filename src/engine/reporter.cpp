#include "engine/reporter.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>

namespace hayat::engine {

namespace {

std::string fmt(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void writeSummaryCsv(std::ostream& out, const SweepTable& table) {
  out << "chip,repetition,darkFraction,policy,horizonYears,"
         "finalChipFmaxHz,finalAverageFmaxHz,chipFmaxAgingRateHzPerYear,"
         "averageFmaxAgingRateHzPerYear,averageTempOverAmbientK,"
         "totalDtmEvents,totalMigrations,throughputRatio\n";
  for (const RunResult& r : table.runs) {
    const LifetimeResult& l = r.lifetime;
    out << r.chip << ',' << r.repetition << ',' << fmt(r.darkFraction)
        << ',' << r.policy << ',' << fmt(l.horizon) << ','
        << fmt(l.chipFmaxAt(l.horizon)) << ','
        << fmt(l.averageFmaxAt(l.horizon)) << ','
        << fmt(l.chipFmaxAgingRate()) << ','
        << fmt(l.averageFmaxAgingRate()) << ','
        << fmt(l.averageTemperatureOverAmbient(r.ambient)) << ','
        << l.totalDtmEvents() << ',' << l.totalMigrations() << ','
        << fmt(r.throughputRatio()) << '\n';
  }
}

void writeEpochsCsv(std::ostream& out, const SweepTable& table) {
  out << "chip,repetition,darkFraction,policy,startYear,dtmEvents,"
         "migrations,throttles,chipPeakK,chipTimeAverageK,throttledSteps,"
         "totalSteps,chipFmaxHz,averageFmaxHz,minHealth,averageHealth,"
         "throughputRatio\n";
  for (const RunResult& r : table.runs) {
    for (const EpochRecord& e : r.lifetime.epochs) {
      out << r.chip << ',' << r.repetition << ',' << fmt(r.darkFraction)
          << ',' << r.policy << ',' << fmt(e.startYear) << ','
          << e.dtmEvents << ',' << e.migrations << ',' << e.throttles
          << ',' << fmt(e.chipPeak) << ',' << fmt(e.chipTimeAverage)
          << ',' << e.throttledSteps << ',' << e.totalSteps << ','
          << fmt(e.chipFmax) << ',' << fmt(e.averageFmax) << ','
          << fmt(e.minHealth) << ',' << fmt(e.averageHealth) << ','
          << fmt(e.throughputRatio) << '\n';
    }
  }
}

void writeJson(std::ostream& out, const SweepTable& table) {
  out << "{\n  \"runs\": [\n";
  for (std::size_t i = 0; i < table.runs.size(); ++i) {
    const RunResult& r = table.runs[i];
    const LifetimeResult& l = r.lifetime;
    out << "    {\"chip\": " << r.chip
        << ", \"repetition\": " << r.repetition
        << ", \"darkFraction\": " << fmt(r.darkFraction) << ", \"policy\": \""
        << jsonEscape(r.policy) << "\", \"horizonYears\": " << fmt(l.horizon)
        << ", \"finalChipFmaxHz\": " << fmt(l.chipFmaxAt(l.horizon))
        << ", \"finalAverageFmaxHz\": " << fmt(l.averageFmaxAt(l.horizon))
        << ", \"totalDtmEvents\": " << l.totalDtmEvents()
        << ", \"throughputRatio\": " << fmt(r.throughputRatio())
        << ", \"epochs\": [";
    for (std::size_t j = 0; j < l.epochs.size(); ++j) {
      const EpochRecord& e = l.epochs[j];
      out << (j ? ", " : "") << "{\"startYear\": " << fmt(e.startYear)
          << ", \"chipPeakK\": " << fmt(e.chipPeak)
          << ", \"chipTimeAverageK\": " << fmt(e.chipTimeAverage)
          << ", \"chipFmaxHz\": " << fmt(e.chipFmax)
          << ", \"averageFmaxHz\": " << fmt(e.averageFmax)
          << ", \"minHealth\": " << fmt(e.minHealth)
          << ", \"averageHealth\": " << fmt(e.averageHealth)
          << ", \"dtmEvents\": " << e.dtmEvents
          << ", \"throughputRatio\": " << fmt(e.throughputRatio) << "}";
    }
    out << "]}" << (i + 1 < table.runs.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

bool exportTable(const std::string& prefix, const SweepTable& table) {
  const std::filesystem::path parent =
      std::filesystem::path(prefix).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) return false;
  }
  std::ofstream summary(prefix + "_summary.csv");
  std::ofstream epochs(prefix + "_epochs.csv");
  std::ofstream json(prefix + ".json");
  if (!summary || !epochs || !json) return false;
  writeSummaryCsv(summary, table);
  writeEpochsCsv(epochs, table);
  writeJson(json, table);
  return summary.good() && epochs.good() && json.good();
}

void maybeExportTable(const std::string& name, const SweepTable& table) {
  const char* dir = std::getenv("HAYAT_EXPORT");
  if (!dir || !*dir) return;
  const std::string prefix = std::string(dir) + "/" + name;
  if (exportTable(prefix, table)) {
    std::printf("[engine] exported %s_{summary,epochs}.csv and %s.json\n",
                prefix.c_str(), prefix.c_str());
  } else {
    std::printf("[engine] WARNING: could not export results under %s\n",
                prefix.c_str());
  }
}

}  // namespace hayat::engine
