#include "engine/result_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "telemetry/metrics.hpp"

namespace hayat::engine {

namespace {

constexpr const char* kMagicPrefix = "# hayat-result-cache v";

std::string magicLine() {
  return kMagicPrefix + std::to_string(kCacheFormatVersion);
}

std::string fmt(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Splits one CSV line after its `tag,` prefix; returns false if the tag
/// does not match.
bool fields(const std::string& line, const char* tag,
            std::vector<std::string>& out) {
  const std::string prefix = std::string(tag) + ',';
  if (line.compare(0, prefix.size(), prefix) != 0) return false;
  out.clear();
  std::size_t start = prefix.size();
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return true;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool readRunResultImpl(std::istream& in, RunResult& r) {
  std::vector<std::string> f;
  std::string line;
  if (!std::getline(in, line) || !fields(line, "run", f) || f.size() < 5)
    return false;
  r.chip = std::stoi(f[0]);
  r.repetition = std::stoi(f[1]);
  r.darkFraction = std::stod(f[2]);
  r.ambient = std::stod(f[3]);
  // The policy label may itself contain commas (multi-param labels), so
  // rejoin everything after the fixed columns.
  r.policy = f[4];
  for (std::size_t i = 5; i < f.size(); ++i) r.policy += ',' + f[i];

  LifetimeResult& l = r.lifetime;
  if (!std::getline(in, line) || !fields(line, "horizon", f) || f.size() != 1)
    return false;
  l.horizon = std::stod(f[0]);

  if (!std::getline(in, line) || !fields(line, "cores", f) || f.size() != 1)
    return false;
  const long cores = std::stol(f[0]);
  l.initialFmax.clear();
  l.finalFmax.clear();
  l.coreDamage.clear();
  for (long i = 0; i < cores; ++i) {
    if (!std::getline(in, line) || !fields(line, "core", f) || f.size() != 3)
      return false;
    l.initialFmax.push_back(std::stod(f[0]));
    l.finalFmax.push_back(std::stod(f[1]));
    l.coreDamage.push_back(std::stod(f[2]));
  }

  if (!std::getline(in, line) || !fields(line, "epochs", f) || f.size() != 1)
    return false;
  const long epochs = std::stol(f[0]);
  l.epochs.clear();
  for (long i = 0; i < epochs; ++i) {
    if (!std::getline(in, line) || !fields(line, "epoch", f) ||
        f.size() != 13)
      return false;
    EpochRecord e;
    e.startYear = std::stod(f[0]);
    e.dtmEvents = std::stol(f[1]);
    e.migrations = std::stol(f[2]);
    e.throttles = std::stol(f[3]);
    e.chipPeak = std::stod(f[4]);
    e.chipTimeAverage = std::stod(f[5]);
    e.throttledSteps = std::stoi(f[6]);
    e.totalSteps = std::stoi(f[7]);
    e.chipFmax = std::stod(f[8]);
    e.averageFmax = std::stod(f[9]);
    e.minHealth = std::stod(f[10]);
    e.averageHealth = std::stod(f[11]);
    e.throughputRatio = std::stod(f[12]);
    l.epochs.push_back(e);
  }

  // Failure section (format v4): always present so multi-run files stay
  // unambiguous; "none" marks a point-MTTF run.
  if (!std::getline(in, line) || !fields(line, "failure", f)) return false;
  l.distribution.reset();
  if (f.size() == 1 && f[0] == "none") return true;
  if (f.size() != 4) return false;
  LifetimeDistribution d;
  const long samples = std::stol(f[0]);
  d.emKills = std::stol(f[1]);
  d.tddbKills = std::stol(f[2]);
  const long units = std::stol(f[3]);
  for (long i = 0; i < units; ++i) {
    if (!std::getline(in, line) || !fields(line, "funit", f) || f.size() != 4)
      return false;
    UnitFailureStats u;
    u.name = f[0];
    u.kind = static_cast<UnitKind>(std::stoi(f[1]));
    u.kills = std::stol(f[2]);
    u.deaths = std::stol(f[3]);
    d.units.push_back(std::move(u));
  }
  for (long i = 0; i < samples; ++i) {
    if (!std::getline(in, line) || !fields(line, "fsample", f) ||
        f.size() != 1)
      return false;
    d.systemLifetimes.push_back(std::stod(f[0]));
  }
  l.distribution = std::move(d);
  return true;
}

}  // namespace

void writeRunResult(std::ostream& out, const RunResult& r) {
  out << "run," << r.chip << ',' << r.repetition << ','
      << fmt(r.darkFraction) << ',' << fmt(r.ambient) << ',' << r.policy
      << '\n';
  const LifetimeResult& l = r.lifetime;
  out << "horizon," << fmt(l.horizon) << '\n';
  out << "cores," << l.initialFmax.size() << '\n';
  for (std::size_t i = 0; i < l.initialFmax.size(); ++i) {
    out << "core," << fmt(l.initialFmax[i]) << ',' << fmt(l.finalFmax[i])
        << ',' << fmt(i < l.coreDamage.size() ? l.coreDamage[i] : 0.0)
        << '\n';
  }
  out << "epochs," << l.epochs.size() << '\n';
  for (const EpochRecord& e : l.epochs) {
    out << "epoch," << fmt(e.startYear) << ',' << e.dtmEvents << ','
        << e.migrations << ',' << e.throttles << ',' << fmt(e.chipPeak)
        << ',' << fmt(e.chipTimeAverage) << ',' << e.throttledSteps << ','
        << e.totalSteps << ',' << fmt(e.chipFmax) << ','
        << fmt(e.averageFmax) << ',' << fmt(e.minHealth) << ','
        << fmt(e.averageHealth) << ',' << fmt(e.throughputRatio) << '\n';
  }
  if (!l.distribution.has_value()) {
    out << "failure,none\n";
    return;
  }
  const LifetimeDistribution& d = *l.distribution;
  out << "failure," << d.systemLifetimes.size() << ',' << d.emKills << ','
      << d.tddbKills << ',' << d.units.size() << '\n';
  for (const UnitFailureStats& u : d.units)
    out << "funit," << u.name << ',' << static_cast<int>(u.kind) << ','
        << u.kills << ',' << u.deaths << '\n';
  for (const Years life : d.systemLifetimes)
    out << "fsample," << fmt(life) << '\n';
}

bool readRunResult(std::istream& in, RunResult& result) {
  try {
    return readRunResultImpl(in, result);
  } catch (const std::exception&) {
    return false;  // stoi/stod parse failure => corrupt record
  }
}

std::string cacheEntryPath(const std::string& dir, const std::string& name,
                           std::uint64_t hash) {
  char hashHex[32];
  std::snprintf(hashHex, sizeof(hashHex), "%016" PRIx64, hash);
  std::string safeName;
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    safeName += safe ? c : '_';
  }
  if (safeName.empty()) safeName = "experiment";
  return dir + "/" + safeName + "-" + hashHex + ".csv";
}

std::string cachePath(const std::string& dir, const ExperimentSpec& spec) {
  return cacheEntryPath(dir, spec.name, specHash(spec));
}

bool storePushedCacheEntry(const std::string& dir, const std::string& name,
                           std::uint64_t hash,
                           const std::string& fileBytes) {
  // The push already crossed decodeCachePush's version check, but the
  // bytes themselves carry the authoritative stamp — reject anything
  // that does not open with this build's magic line.
  const std::string magic = magicLine() + '\n';
  if (fileBytes.compare(0, magic.size(), magic) != 0) return false;

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  const std::string path = cacheEntryPath(dir, name, hash);
  const std::string tmp = path + ".push.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(fileBytes.data(),
              static_cast<std::streamsize>(fileBytes.size()));
    if (!out) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (!ec && telemetry::enabled()) {
    static telemetry::Counter& stored = telemetry::Registry::global().counter(
        "hayat_result_cache_push_stored_total");
    stored.add();
  }
  return !ec;
}

std::optional<SweepTable> loadCachedTable(const std::string& dir,
                                          const ExperimentSpec& spec) {
  const auto miss = []() -> std::optional<SweepTable> {
    if (telemetry::enabled()) {
      static telemetry::Counter& misses =
          telemetry::Registry::global().counter(
              "hayat_result_cache_misses_total");
      misses.add();
    }
    return std::nullopt;
  };

  const std::string path = cachePath(dir, spec);
  std::ifstream in(path);
  if (!in) return miss();

  // Any file that exists but cannot serve this spec — stale format
  // version, signature mismatch (hash collision or drift), or corruption
  // — is an orphan: nothing will ever read it, so delete it on the way
  // out instead of letting the cache directory grow forever.
  const auto orphaned = [&]() -> std::optional<SweepTable> {
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::fprintf(stderr, "[engine] dropped stale cache entry %s\n",
                 path.c_str());
    if (telemetry::enabled()) {
      static telemetry::Counter& orphans =
          telemetry::Registry::global().counter(
              "hayat_result_cache_orphans_dropped_total");
      orphans.add();
    }
    return miss();
  };

  const auto hit = [&](SweepTable table) -> std::optional<SweepTable> {
    if (telemetry::enabled()) {
      static telemetry::Counter& hits =
          telemetry::Registry::global().counter("hayat_result_cache_hits_total");
      hits.add();
    }
    return table;
  };

  std::string line;
  if (!std::getline(in, line) || line != magicLine()) return orphaned();

  // The embedded signature must match exactly — this catches both hash
  // collisions and format drift.
  const std::string expected = specSignature(spec);
  std::vector<std::string> f;
  try {
    if (!std::getline(in, line) || !fields(line, "signature-lines", f) ||
        f.size() != 1)
      return orphaned();
    const long sigLines = std::stol(f[0]);
    std::string sig;
    for (long i = 0; i < sigLines; ++i) {
      if (!std::getline(in, line) || line.compare(0, 2, "# ") != 0)
        return orphaned();
      sig += line.substr(2) + '\n';
    }
    if (sig != expected) return orphaned();

    if (!std::getline(in, line) || !fields(line, "runs", f) || f.size() != 1)
      return orphaned();
    const long count = std::stol(f[0]);

    SweepTable table;
    for (long i = 0; i < count; ++i) {
      RunResult r;
      if (!readRunResult(in, r)) return orphaned();
      table.runs.push_back(std::move(r));
    }
    return hit(std::move(table));
  } catch (const std::exception&) {
    return orphaned();  // stol parse failure => corrupt header
  }
}

bool storeCachedTable(const std::string& dir, const ExperimentSpec& spec,
                      const SweepTable& table) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  const std::string path = cachePath(dir, spec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << magicLine() << '\n';
    const std::string sig = specSignature(spec);
    long lines = 0;
    for (const char c : sig)
      if (c == '\n') ++lines;
    out << "signature-lines," << lines << '\n';
    std::istringstream sigStream(sig);
    std::string sigLine;
    while (std::getline(sigStream, sigLine)) out << "# " << sigLine << '\n';
    out << "runs," << table.runs.size() << '\n';
    for (const RunResult& r : table.runs) writeRunResult(out, r);
    if (!out) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (!ec && telemetry::enabled()) {
    static telemetry::Counter& stores = telemetry::Registry::global().counter(
        "hayat_result_cache_stores_total");
    stores.add();
  }
  return !ec;
}

CacheEvictionStats evictResultCache(const std::string& dir,
                                    std::uint64_t maxBytes,
                                    double maxAgeSeconds) {
  namespace fs = std::filesystem;
  CacheEvictionStats stats;
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) return stats;

  struct Entry {
    fs::path path;
    std::uint64_t bytes = 0;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!item.is_regular_file(ec) || ec) continue;
    if (item.path().extension() != ".csv") continue;  // skip .tmp etc.
    Entry e;
    e.path = item.path();
    e.bytes = static_cast<std::uint64_t>(item.file_size(ec));
    if (ec) continue;
    e.mtime = item.last_write_time(ec);
    if (ec) continue;
    entries.push_back(std::move(e));
  }

  stats.scannedFiles = entries.size();
  std::uint64_t totalBytes = 0;
  for (const Entry& e : entries) totalBytes += e.bytes;
  stats.scannedBytes = totalBytes;

  const auto remove = [&](const Entry& e, std::uint64_t& evicted) {
    std::error_code rmEc;
    if (!fs::remove(e.path, rmEc) || rmEc) return;
    ++evicted;
    stats.evictedBytes += e.bytes;
    totalBytes -= e.bytes;
  };

  if (maxAgeSeconds >= 0.0) {
    const auto now = fs::file_time_type::clock::now();
    std::vector<Entry> kept;
    for (const Entry& e : entries) {
      const double age =
          std::chrono::duration_cast<std::chrono::duration<double>>(now -
                                                                    e.mtime)
              .count();
      // maxAge == 0 is the evict-all flush: every entry goes, including
      // one written within the current clock tick (age == 0).
      if (maxAgeSeconds == 0.0 || age > maxAgeSeconds) {
        remove(e, stats.evictedByAge);
      } else {
        kept.push_back(e);
      }
    }
    entries = std::move(kept);
  }

  if (maxBytes > 0 && totalBytes > maxBytes) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
    for (const Entry& e : entries) {
      if (totalBytes <= maxBytes) break;
      remove(e, stats.evictedBySize);
    }
  }

  if (telemetry::enabled() &&
      (stats.evictedByAge > 0 || stats.evictedBySize > 0)) {
    static telemetry::Counter& byAge = telemetry::Registry::global().counter(
        "hayat_result_cache_evicted_age_total");
    static telemetry::Counter& bySize = telemetry::Registry::global().counter(
        "hayat_result_cache_evicted_size_total");
    static telemetry::Counter& bytes = telemetry::Registry::global().counter(
        "hayat_result_cache_evicted_bytes_total");
    byAge.add(stats.evictedByAge);
    bySize.add(stats.evictedBySize);
    bytes.add(stats.evictedBytes);
  }
  return stats;
}

}  // namespace hayat::engine
