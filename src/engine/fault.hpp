// Deterministic fault injection for the dispatch wire layer.
//
// Recovery paths (steal, re-steal, duplicate completion, corrupt push,
// mid-steal worker death) must be exercised by name in tests, not by
// racing real processes and hoping a crash lands in the right window.
// HAYAT_FAULT_PLAN describes a schedule of faults in a tiny grammar:
//
//   drop:frame=N        coordinator: swallow its N-th outbound frame
//   corrupt:frame=N     coordinator: mangle the payload of frame N
//   delay:worker=W,ms=M worker slot W: sleep M ms before every Result
//   die:worker=W,after=K worker slot W: _exit(43) after K Results
//   stall:worker=W,after=K worker slot W: hang before task K+1
//
// Rules are ';'-separated (`drop:frame=3;die:worker=2,after=5`).  Frame
// ordinals are 1-based and count every frame the coordinator writes
// after the plan is installed (Spec frames included), so a plan plus a
// fixed topology names one exact frame.  Worker rules key on the slot
// index the dispatcher assigns at spawn time (exported to the child as
// HAYAT_FAULT_WORKER), so "worker 2" means the same process on every
// run.
//
// The coordinator side hooks writeMessage() at the transport boundary:
// a dropped frame is reported as written but never hits the socket (the
// peer sees silence, exactly like a lost packet), a corrupted frame
// keeps valid framing but flips payload bytes (the peer sees a decode
// error, exactly like bit rot).  Worker-side rules are read by
// runWorkerLoop() from the environment; forked children clear any
// inherited coordinator-side state so a plan never double-fires.
#pragma once

#include <atomic>
#include <string>
#include <vector>

namespace hayat::engine {

struct FaultRule {
  enum class Kind { Drop, Corrupt, Delay, Die, Stall };
  Kind kind = Kind::Drop;
  long frame = 0;   ///< Drop/Corrupt: 1-based outbound frame ordinal
  int worker = -1;  ///< Delay/Die/Stall: dispatcher slot index
  long ms = 0;      ///< Delay: sleep duration
  long after = 0;   ///< Die/Stall: Results served before the fault fires
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  bool empty() const { return rules.empty(); }
};

/// Parses the HAYAT_FAULT_PLAN grammar; throws hayat::Error on any
/// malformed rule (unknown verb, missing key, non-numeric value).
FaultPlan parseFaultPlan(const std::string& text);

namespace detail {
extern std::atomic<bool> gFaultsInstalled;
}  // namespace detail

/// True when a coordinator-side plan is active — the one branch
/// writeMessage() pays on the hot path when fault injection is off.
inline bool faultsInstalled() {
  return detail::gFaultsInstalled.load(std::memory_order_relaxed);
}

/// Installs the coordinator-side rules (drop/corrupt) of `plan` in this
/// process and resets the outbound frame counter to zero, so the same
/// plan reproduces the same schedule run after run.  Worker-side rules
/// are ignored here (workers read them from the environment).
void installCoordinatorFaults(const FaultPlan& plan);

/// Removes any installed plan (forked workers call this so inherited
/// coordinator state never fires twice; dispatcher teardown calls it so
/// one test's plan cannot leak into the next).
void clearCoordinatorFaults();

/// The action writeMessage() must take for the frame it is about to
/// write.  Counts one outbound frame per call.
enum class WriteFault { None, Drop, Corrupt };
WriteFault nextWriteFault();

/// Worker-side view of the plan: the rules addressed to this process's
/// slot (HAYAT_FAULT_WORKER), read from HAYAT_FAULT_PLAN.  A malformed
/// plan is ignored here — the coordinator already failed loudly.
struct WorkerFaults {
  long delayMs = 0;     ///< sleep before each Result write (0: none)
  long dieAfter = -1;   ///< _exit(43) after this many Results (-1: never)
  long stallAfter = -1; ///< hang before serving the next task (-1: never)
};
WorkerFaults workerFaultsFromEnv();

/// Exit code a `die:` rule uses, distinct from real crashes (42 in the
/// legacy HAYAT_WORKER_EXIT_AFTER hook) and decode failures (1).
inline constexpr int kFaultDeathExitCode = 43;

}  // namespace hayat::engine
