#include "engine/wire.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "engine/fault.hpp"
#include "engine/result_cache.hpp"
#include "telemetry/metrics.hpp"

namespace hayat::engine {

namespace {

/// Anything larger than this is a corrupt frame, not a real payload (the
/// largest legitimate message is a RunResult trace, well under a MB).
constexpr std::uint32_t kMaxPayload = 256u * 1024u * 1024u;

bool writeAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool readAll(int fd, char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Sequential key=value line parser backing the spec decoder: the walker
/// dictates the field order, the decoder verifies each line's key and
/// hands back its value.
class SpecDecoder final : public SpecFieldVisitor {
 public:
  explicit SpecDecoder(std::istream& in) : in_(in) {}

  void field(const char* key, int& value) override {
    value = static_cast<int>(parseLong(key));
  }
  void field(const char* key, bool& value) override {
    value = parseLong(key) != 0;
  }
  void field(const char* key, double& value) override {
    const std::string text = take(key);
    char* end = nullptr;
    value = std::strtod(text.c_str(), &end);
    HAYAT_REQUIRE(end == text.c_str() + text.size() && !text.empty(),
                  "wire spec: bad double for '" + std::string(key) + "'");
  }
  void field(const char* key, std::uint64_t& value) override {
    const std::string text = take(key);
    char* end = nullptr;
    value = std::strtoull(text.c_str(), &end, 10);
    HAYAT_REQUIRE(end == text.c_str() + text.size() && !text.empty(),
                  "wire spec: bad uint64 for '" + std::string(key) + "'");
  }
  void field(const char* key, std::string& value) override {
    value = take(key);
  }

 private:
  long parseLong(const char* key) {
    const std::string text = take(key);
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    HAYAT_REQUIRE(end == text.c_str() + text.size() && !text.empty(),
                  "wire spec: bad integer for '" + std::string(key) + "'");
    return value;
  }

  std::string take(const char* key) {
    std::string line;
    HAYAT_REQUIRE(std::getline(in_, line),
                  "wire spec: truncated at '" + std::string(key) + "'");
    const std::string prefix = std::string(key) + '=';
    HAYAT_REQUIRE(line.compare(0, prefix.size(), prefix) == 0,
                  "wire spec: expected '" + std::string(key) + "', got '" +
                      line + "'");
    return line.substr(prefix.size());
  }

  std::istream& in_;
};

/// Mirrors the signature writer, reused for the wire encoding so both
/// stay in lockstep with the canonical walk.
class SpecEncoder final : public SpecFieldVisitor {
 public:
  explicit SpecEncoder(std::ostream& out) : out_(out) {}

  void field(const char* key, double& value) override {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ << key << '=' << buf << '\n';
  }
  void field(const char* key, int& value) override {
    out_ << key << '=' << value << '\n';
  }
  void field(const char* key, bool& value) override {
    out_ << key << '=' << (value ? 1 : 0) << '\n';
  }
  void field(const char* key, std::uint64_t& value) override {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ << key << '=' << buf << '\n';
  }
  void field(const char* key, std::string& value) override {
    out_ << key << '=' << value << '\n';
  }

 private:
  std::ostream& out_;
};

int parseIndexLine(std::istream& in, const char* what) {
  std::string line;
  HAYAT_REQUIRE(std::getline(in, line) && line.rfind("index=", 0) == 0,
                std::string(what) + ": missing index line");
  return std::stoi(line.substr(6));
}

}  // namespace

bool writeMessage(int fd, MsgType type, const std::string& payload) {
  if (payload.size() > kMaxPayload) return false;
  // Fault-injection hook (tests only; one relaxed load when inactive).
  // A Drop reports success without touching the socket — the peer sees
  // the same silence as a lost frame.  A Corrupt keeps the framing valid
  // but mangles the payload so the peer hits a decode error, not a
  // framing error.
  std::string mangled;
  const std::string* body = &payload;
  if (faultsInstalled()) {
    switch (nextWriteFault()) {
      case WriteFault::None:
        break;
      case WriteFault::Drop:
        return true;
      case WriteFault::Corrupt:
        mangled = payload;
        if (mangled.empty()) mangled = "!";
        for (std::size_t i = 0; i < mangled.size() && i < 16; ++i)
          mangled[i] = static_cast<char>(mangled[i] ^ 0x5A);
        body = &mangled;
        break;
    }
  }
  const std::uint32_t size = static_cast<std::uint32_t>(body->size());
  char header[8];
  header[0] = 'H';
  header[1] = 'W';
  header[2] = static_cast<char>(kWireVersion);
  header[3] = static_cast<char>(type);
  header[4] = static_cast<char>((size >> 24) & 0xFF);
  header[5] = static_cast<char>((size >> 16) & 0xFF);
  header[6] = static_cast<char>((size >> 8) & 0xFF);
  header[7] = static_cast<char>(size & 0xFF);
  const bool ok = writeAll(fd, header, sizeof(header)) &&
                  writeAll(fd, body->data(), body->size());
  if (ok && telemetry::enabled()) {
    static telemetry::Counter& messages =
        telemetry::Registry::global().counter("hayat_wire_messages_sent_total");
    static telemetry::Counter& bytes =
        telemetry::Registry::global().counter("hayat_wire_bytes_sent_total");
    messages.add();
    bytes.add(sizeof(header) + body->size());
  }
  return ok;
}

bool readMessage(int fd, Message& out) {
  char header[8];
  if (!readAll(fd, header, sizeof(header))) return false;
  if (header[0] != 'H' || header[1] != 'W' ||
      static_cast<std::uint8_t>(header[2]) != kWireVersion)
    return false;
  const std::uint32_t size =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[4]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[5]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[6]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[7]));
  if (size > kMaxPayload) return false;
  out.type = static_cast<MsgType>(header[3]);
  out.payload.resize(size);
  if (size != 0 && !readAll(fd, out.payload.data(), size)) return false;
  if (telemetry::enabled()) {
    static telemetry::Counter& messages = telemetry::Registry::global().counter(
        "hayat_wire_messages_received_total");
    static telemetry::Counter& bytes = telemetry::Registry::global().counter(
        "hayat_wire_bytes_received_total");
    messages.add();
    bytes.add(sizeof(header) + size);
  }
  return true;
}

bool readMessage(int fd, Message& out, int timeoutMs, bool& timedOut) {
  timedOut = false;
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeoutMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      timedOut = true;
      return false;
    }
    break;
  }
  return readMessage(fd, out);
}

std::string encodeSpec(const ExperimentSpec& spec) {
  HAYAT_REQUIRE(!spec.lifetime.fixedMix.has_value(),
                "fixed-mix specs have no canonical serialization and cannot "
                "be dispatched to workers");
  std::ostringstream out;
  out << "spec.name=" << spec.name << '\n';
  SpecEncoder enc(out);
  ExperimentSpec copy = spec;
  visitSpecFields(copy, enc);
  return out.str();
}

ExperimentSpec decodeSpec(const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  HAYAT_REQUIRE(std::getline(in, line) && line.rfind("spec.name=", 0) == 0,
                "wire spec: missing spec.name line");
  ExperimentSpec spec;
  spec.name = line.substr(10);
  SpecDecoder dec(in);
  try {
    visitSpecFields(spec, dec);
  } catch (const Error&) {
    throw;
  } catch (const std::exception& e) {
    throw Error(std::string("wire spec: ") + e.what());
  }
  HAYAT_REQUIRE(!std::getline(in, line), "wire spec: trailing data");
  return spec;
}

std::string encodeTask(int index, std::uint64_t hash) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "index=%d\nhash=%016" PRIx64 "\n", index,
                hash);
  return buf;
}

void decodeTask(const std::string& payload, int& index,
                std::uint64_t& hash) {
  std::istringstream in(payload);
  index = parseIndexLine(in, "wire task");
  std::string line;
  HAYAT_REQUIRE(std::getline(in, line) && line.rfind("hash=", 0) == 0,
                "wire task: missing hash line");
  hash = std::strtoull(line.c_str() + 5, nullptr, 16);
}

std::string encodeResult(int index, const RunResult& result,
                         const std::string& metricsText) {
  std::ostringstream out;
  out << "index=" << index << '\n';
  writeRunResult(out, result);
  if (!metricsText.empty()) {
    long lines = 0;
    for (const char c : metricsText)
      if (c == '\n') ++lines;
    out << "metrics," << lines << '\n' << metricsText;
  }
  return out.str();
}

void decodeResult(const std::string& payload, int& index, RunResult& result,
                  telemetry::MetricDeltas* metricDeltas) {
  std::istringstream in(payload);
  index = parseIndexLine(in, "wire result");
  HAYAT_REQUIRE(readRunResult(in, result), "wire result: malformed run record");
  if (metricDeltas != nullptr) metricDeltas->clear();

  std::string line;
  if (!std::getline(in, line)) return;  // no metrics section
  HAYAT_REQUIRE(line.rfind("metrics,", 0) == 0,
                "wire result: trailing data is not a metrics section");
  char* end = nullptr;
  const long lines = std::strtol(line.c_str() + 8, &end, 10);
  HAYAT_REQUIRE(end == line.c_str() + line.size() && lines >= 0,
                "wire result: bad metrics line count");
  std::string text;
  for (long i = 0; i < lines; ++i) {
    HAYAT_REQUIRE(std::getline(in, line),
                  "wire result: truncated metrics section");
    text += line + '\n';
  }
  HAYAT_REQUIRE(!std::getline(in, line),
                "wire result: trailing data after metrics section");
  telemetry::MetricDeltas deltas;
  HAYAT_REQUIRE(telemetry::decodeMetricDeltas(text, deltas),
                "wire result: malformed metrics section");
  if (metricDeltas != nullptr) *metricDeltas = std::move(deltas);
}

std::string encodeCachePush(const std::string& specName, std::uint64_t hash,
                            const std::string& fileBytes) {
  std::ostringstream out;
  char buf[80];
  std::snprintf(buf, sizeof(buf), "hash=%016" PRIx64 "\nbytes=%zu\n", hash,
                fileBytes.size());
  out << "cache.version=" << kCacheFormatVersion << '\n'
      << "name=" << specName << '\n'
      << buf << fileBytes;
  return out.str();
}

void decodeCachePush(const std::string& payload, std::string& specName,
                     std::uint64_t& hash, std::string& fileBytes) {
  std::istringstream in(payload);
  std::string line;
  HAYAT_REQUIRE(
      std::getline(in, line) && line.rfind("cache.version=", 0) == 0,
      "wire cache-push: missing cache.version line");
  char* end = nullptr;
  const long version = std::strtol(line.c_str() + 14, &end, 10);
  HAYAT_REQUIRE(end == line.c_str() + line.size(),
                "wire cache-push: bad cache.version");
  HAYAT_REQUIRE(version == kCacheFormatVersion,
                "wire cache-push: cache format v" + std::to_string(version) +
                    " does not match this build's v" +
                    std::to_string(kCacheFormatVersion));
  HAYAT_REQUIRE(std::getline(in, line) && line.rfind("name=", 0) == 0,
                "wire cache-push: missing name line");
  specName = line.substr(5);
  HAYAT_REQUIRE(std::getline(in, line) && line.rfind("hash=", 0) == 0,
                "wire cache-push: missing hash line");
  hash = std::strtoull(line.c_str() + 5, nullptr, 16);
  HAYAT_REQUIRE(std::getline(in, line) && line.rfind("bytes=", 0) == 0,
                "wire cache-push: missing bytes line");
  end = nullptr;
  const unsigned long long count =
      std::strtoull(line.c_str() + 6, &end, 10);
  HAYAT_REQUIRE(end == line.c_str() + line.size(),
                "wire cache-push: bad byte count");
  const std::size_t offset = static_cast<std::size_t>(in.tellg());
  HAYAT_REQUIRE(payload.size() - offset == count,
                "wire cache-push: byte count does not match payload");
  fileBytes = payload.substr(offset);
}

std::string encodeTaskError(int index, const std::string& message) {
  std::ostringstream out;
  out << "index=" << index << '\n';
  // Keep the payload one-line-parseable even for multi-line what()s.
  for (const char c : message) out << (c == '\n' ? ' ' : c);
  out << '\n';
  return out.str();
}

void decodeTaskError(const std::string& payload, int& index,
                     std::string& message) {
  std::istringstream in(payload);
  index = parseIndexLine(in, "wire task-error");
  std::getline(in, message);
}

}  // namespace hayat::engine
