// ExperimentSpec — the hashable description of a population experiment.
//
// Every figure in the paper is a fan-out over {chips x policies x dark
// fractions x repetition seeds} of the same lifetime simulation.  A spec
// captures that whole product declaratively: the system assembly
// (SystemConfig), the lifetime driver template (LifetimeConfig), the
// policies by name (PolicyRegistry factories, so each run instantiates
// its own policy), and the population/seed axes.  Because the spec
// serializes to a canonical signature, it hashes stably across runs and
// keys the on-disk result cache (result_cache.hpp).
//
// Seed derivation rule
// --------------------
// No run inherits a hidden seed default (the old code shared, e.g.,
// thermalSensorSeed = 515 across every repetition).  Instead every
// stochastic stream of task (chip c, repetition r) derives from the
// spec's single baseSeed:
//
//     seed(stream, c, r) = splitmix64(baseSeed
//                                     ^ splitmix64(0x100000001 * stream
//                                                  + 0x10001 * c + r))
//
// with stream ids Workload = 1, HealthSensor = 2, ThermalSensor = 3
// (deriveSeed below).  Distinct (stream, chip, repetition) triples get
// decorrelated seeds; repetition 0 of chip 0 does NOT collapse onto the
// raw baseSeed.  The LifetimeConfig/EpochConfig seed fields inside the
// spec are therefore *outputs* of task expansion, never inputs, and are
// excluded from the signature.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lifetime.hpp"
#include "core/system.hpp"
#include "runtime/policy_registry.hpp"

namespace hayat::engine {

/// Stochastic streams a task consumes (see the derivation rule above).
enum class SeedStream : std::uint64_t {
  Workload = 1,       ///< LifetimeConfig::workloadSeed
  HealthSensor = 2,   ///< LifetimeConfig::sensorSeed
  ThermalSensor = 3,  ///< EpochConfig::thermalSensorSeed
  Failure = 4,        ///< LifetimeConfig::failure.seed (Monte Carlo)
};

/// The documented seed-derivation rule.
std::uint64_t deriveSeed(std::uint64_t baseSeed, int chip, int repetition,
                         SeedStream stream);

/// One experiment: the full task product the engine expands.
struct ExperimentSpec {
  /// Label used for cache file names and reports (not hashed).
  std::string name = "experiment";

  SystemConfig system;      ///< chip assembly (Section V defaults)
  /// Lifetime driver template.  minDarkFraction and the seed fields are
  /// overwritten per task (from darkFractions and baseSeed); every other
  /// field applies to all runs.
  LifetimeConfig lifetime;

  std::vector<PolicySpec> policies = {{"Hayat", {}}};
  std::vector<int> chips = {0};             ///< population indices
  std::vector<double> darkFractions = {0.5};
  int repetitions = 1;                      ///< independent seed draws

  /// Spatial candidate pruning for every Hayat-family policy in the
  /// sweep (DESIGN.md §3.11): "" (default) keeps the exact sweep,
  /// "radius:R" evaluates only the R strongest feasible neighbours of
  /// the previous commit, "radius:inf" is the pruned code path with an
  /// unbounded radius (placement-identical to exact).  Pruning may
  /// change placements, so the knob is part of the signature/hash —
  /// exact and pruned results can never collide in the result cache.
  /// Policies that set an explicit pruneRadius param keep it.
  std::string policyPrune;

  std::uint64_t populationSeed = 2015;      ///< variation-map population
  std::uint64_t baseSeed = 99;              ///< root of all derived seeds

  /// Number of (chip, dark, policy, repetition) tasks.
  int taskCount() const {
    return static_cast<int>(chips.size() * darkFractions.size() *
                            policies.size()) *
           repetitions;
  }
};

/// Visitor over the canonical walk of a spec's result-affecting fields.
/// The walk is the single source of truth for which fields matter: the
/// signature (and hence the hash and the result cache), the wire codec
/// that ships specs to worker processes (wire.hpp), and the hash property
/// tests all iterate the same sequence.  Visitors receive mutable
/// references; list-sized fields are preceded by their count, and a
/// visitor that changes a count causes the walker to resize the list
/// before visiting its elements (which is how the wire decoder
/// reconstructs variable-length fields).
class SpecFieldVisitor {
 public:
  virtual ~SpecFieldVisitor() = default;
  virtual void field(const char* key, int& value) = 0;
  virtual void field(const char* key, bool& value) = 0;
  virtual void field(const char* key, double& value) = 0;
  virtual void field(const char* key, std::uint64_t& value) = 0;
  virtual void field(const char* key, std::string& value) = 0;
};

/// Walks every result-affecting field of `spec` in canonical order.  The
/// spec name and the per-task derived seed fields (see the seed rule
/// above) are NOT part of the walk.  Throws if a visitor materializes a
/// fixed workload mix out of thin air (a fixedMix is only representable
/// by its application count; see wire.hpp).
void visitSpecFields(ExperimentSpec& spec, SpecFieldVisitor& visitor);

/// Canonical text serialization of every result-affecting field.  Two
/// specs with equal signatures produce bit-identical results; any change
/// to a hashed field changes the signature.
std::string specSignature(const ExperimentSpec& spec);

/// FNV-1a 64-bit hash of the signature — the result-cache key.  Stable
/// across processes and platforms.
std::uint64_t specHash(const ExperimentSpec& spec);

/// Parses ExperimentSpec::policyPrune: "" -> 0 (exact), "radius:R" -> R
/// (R >= 1), "radius:inf" -> INT_MAX.  Throws on anything else.
int parsePolicyPrune(const std::string& prune);

/// The policy spec a task expanded from `spec` actually carries: the
/// sweep-wide prune knob reaches Hayat-family policies as a
/// `pruneRadius` param (an explicit per-policy param wins).  Anything
/// that selects results by label — reports, the CLI summary — must
/// query the label of *this* spec, not the bare entry in
/// `spec.policies`, or a pruned sweep's rows are invisible to it.
PolicySpec effectiveTaskPolicy(const ExperimentSpec& spec,
                               const PolicySpec& policy);

}  // namespace hayat::engine
