// Per-unit hard-failure wearout models: electromigration and TDDB.
//
// The Arrhenius MttfModel (aging/mttf.hpp) treats the whole chip as one
// temperature-driven series system.  OldSpot-class whole-SoC modeling
// (Kappel et al., ICCD 2018) needs mechanism-resolved *per-unit* rates,
// because different units see different stresses: a core's interconnect
// carries current only while the core computes (electromigration), while
// a shared cache sits under gate bias whenever the chip is powered
// (TDDB).  This module provides the two classic closed forms:
//
//   Electromigration (Black's equation):
//     MTTF_EM(T, j) = MTTF_ref * (j / j_ref)^(-n) * exp(Ea/k (1/T - 1/T_ref))
//   with j the current-density factor (we use the unit's duty cycle as
//   the utilization-proportional proxy) and n ~ 2 (Black's original
//   exponent).
//
//   Time-dependent dielectric breakdown (power-law voltage acceleration):
//     MTTF_TDDB(T, d) = MTTF_ref * (V/V_ref)^(-gamma)
//                       * exp(Ea/k (1/T - 1/T_ref)) / d
//   with d the bias duty (fraction of time the gate stack is stressed)
//   and gamma ~ 46, the percolation-model exponent.
//
// Zero stress means the mechanism never damages the unit: both models
// return kUnboundedLifetime (infinity) and a zero damage rate, so a
// permanently dark unit survives every Monte Carlo sample.  Both models
// accumulate under Miner's rule exactly like MttfModel — damageRate() is
// 1/MTTF at the instantaneous operating point — which is what lets the
// Monte Carlo driver (monte_carlo.hpp) walk the simulator's own
// temperature/duty trajectories.
#pragma once

#include "aging/mttf.hpp"  // kUnboundedLifetime + Miner-rule primitives
#include "common/units.hpp"

namespace hayat {

/// Black's-equation electromigration parameters.
struct EmConfig {
  /// Activation energy [eV]; 0.9 eV is the canonical Cu-interconnect EM
  /// value (JEDEC JEP122).
  double activationEnergyEv = 0.9;
  /// Current-density exponent n of Black's equation (~2 for void
  /// nucleation limited EM).
  double currentExponent = 2.0;
  /// MTTF at (referenceTemperature, referenceCurrentFactor) [years].
  Years referenceMttfYears = 20.0;
  Kelvin referenceTemperature = 345.0;
  /// Current-density factor the reference MTTF is quoted at (a core at
  /// ~50 % utilization).
  double referenceCurrentFactor = 0.5;
};

/// Black's-equation evaluator.
class EmModel {
 public:
  explicit EmModel(EmConfig config = {});

  /// MTTF at constant temperature and current-density factor [years].
  /// currentFactor <= 0 returns kUnboundedLifetime.
  Years mttf(Kelvin temperature, double currentFactor) const;

  /// Instantaneous Miner damage rate 1/MTTF [1/years]; 0 at zero stress.
  double damageRate(Kelvin temperature, double currentFactor) const;

  const EmConfig& config() const { return config_; }

 private:
  EmConfig config_;
};

/// Power-law TDDB parameters.
struct TddbConfig {
  /// Activation energy [eV]; 0.75 eV sits in the reported 0.6-0.9 range
  /// for high-k gate stacks.
  double activationEnergyEv = 0.75;
  /// Voltage-acceleration exponent gamma of the percolation power law.
  double voltageExponent = 46.0;
  Volts vdd = 1.13;           ///< operating gate voltage (Section V)
  Volts referenceVdd = 1.13;  ///< voltage the reference MTTF is quoted at
  /// MTTF at (referenceTemperature, referenceVdd, full bias duty) [years].
  Years referenceMttfYears = 25.0;
  Kelvin referenceTemperature = 345.0;
};

/// Power-law TDDB evaluator.
class TddbModel {
 public:
  explicit TddbModel(TddbConfig config = {});

  /// MTTF at constant temperature and bias duty [years].  biasDuty <= 0
  /// returns kUnboundedLifetime.
  Years mttf(Kelvin temperature, double biasDuty) const;

  /// Instantaneous Miner damage rate 1/MTTF [1/years]; 0 at zero stress.
  double damageRate(Kelvin temperature, double biasDuty) const;

  const TddbConfig& config() const { return config_; }

 private:
  TddbConfig config_;
};

}  // namespace hayat
