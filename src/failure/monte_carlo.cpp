#include "failure/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "telemetry/metrics.hpp"

namespace hayat {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void printDouble(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

std::uint64_t counterU64(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c) {
  // Feed each coordinate through one splitmix64 round so nearby counters
  // land far apart; the chain is a pure function of (seed, a, b, c).
  std::uint64_t x = splitmix64(seed);
  x = splitmix64(x ^ a);
  x = splitmix64(x ^ b);
  x = splitmix64(x ^ c);
  return x;
}

double counterUniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c) {
  // Top 53 bits -> the full double mantissa, uniform in [0, 1).
  return static_cast<double>(counterU64(seed, a, b, c) >> 11) * 0x1.0p-53;
}

FailureMonteCarlo::FailureMonteCarlo(FailureConfig config, FailureGraph graph)
    : config_(config),
      graph_(std::move(graph)),
      em_(config.em),
      tddb_(config.tddb) {
  HAYAT_REQUIRE(config.samples >= 0, "negative Monte Carlo sample count");
  HAYAT_REQUIRE(config.weibullShape > 0.0, "Weibull shape must be positive");
  HAYAT_REQUIRE(graph_.unitCount() >= 1, "failure graph has no units");
}

Years FailureMonteCarlo::sampleMechanismLifetime(const UnitTrajectory& unit,
                                                 Years epochLength, int sample,
                                                 int unitIndex,
                                                 bool tddb) const {
  HAYAT_REQUIRE(unit.temperature.size() == unit.stress.size(),
                "trajectory temperature/stress length mismatch");
  const double u =
      counterUniform(config_.seed, static_cast<std::uint64_t>(sample),
                     static_cast<std::uint64_t>(unitIndex), tddb ? 1 : 0);
  const double threshold = weibullMeanOneQuantile(u, config_.weibullShape);
  std::vector<double> rates(unit.temperature.size());
  for (std::size_t e = 0; e < rates.size(); ++e)
    rates[e] = tddb ? tddb_.damageRate(unit.temperature[e], unit.stress[e])
                    : em_.damageRate(unit.temperature[e], unit.stress[e]);
  return damageCrossingTime(rates, epochLength, threshold);
}

LifetimeDistribution FailureMonteCarlo::run(
    const std::vector<UnitTrajectory>& units, Years epochLength) const {
  HAYAT_REQUIRE(static_cast<int>(units.size()) == graph_.unitCount(),
                "one trajectory per graph unit required");
  HAYAT_REQUIRE(epochLength > 0.0, "epoch length must be positive");

  // The damage-rate trajectories are sample-independent: precompute the
  // per-unit cumulative damage walk once, so each sample only pays a
  // binary search per (unit, mechanism).
  struct Schedule {
    std::vector<double> cumulative;  // damage at the END of each epoch
    std::vector<double> rates;
    double meanRate = 0.0;
    Years horizon = 0.0;

    Years crossingTime(double threshold, Years epoch) const {
      if (threshold <= 0.0) return 0.0;
      const auto it = std::lower_bound(cumulative.begin(), cumulative.end(),
                                       threshold);
      if (it != cumulative.end()) {
        const std::size_t e =
            static_cast<std::size_t>(it - cumulative.begin());
        const double before = e == 0 ? 0.0 : cumulative[e - 1];
        // Same arithmetic as damageCrossingTime's in-epoch interpolation,
        // so the two agree bitwise (pinned by the property tests).
        return static_cast<double>(e) * epoch +
               (threshold - before) / rates[e];
      }
      const double damage = cumulative.empty() ? 0.0 : cumulative.back();
      if (damage <= 0.0 || horizon <= 0.0) return kUnboundedLifetime;
      return horizon + (threshold - damage) / meanRate;
    }
  };

  const std::size_t unitCount = units.size();
  std::vector<Schedule> emSchedules(unitCount);
  std::vector<Schedule> tddbSchedules(unitCount);
  for (std::size_t u = 0; u < unitCount; ++u) {
    HAYAT_REQUIRE(units[u].temperature.size() == units[u].stress.size(),
                  "trajectory temperature/stress length mismatch");
    const std::size_t epochs = units[u].temperature.size();
    for (const bool tddb : {false, true}) {
      Schedule& s = tddb ? tddbSchedules[u] : emSchedules[u];
      s.rates.resize(epochs);
      s.cumulative.resize(epochs);
      double damage = 0.0;
      for (std::size_t e = 0; e < epochs; ++e) {
        s.rates[e] = tddb ? tddb_.damageRate(units[u].temperature[e],
                                             units[u].stress[e])
                          : em_.damageRate(units[u].temperature[e],
                                           units[u].stress[e]);
        damage += s.rates[e] * epochLength;
        s.cumulative[e] = damage;
      }
      s.horizon = static_cast<double>(epochs) * epochLength;
      s.meanRate = s.horizon > 0.0 ? damage / s.horizon : 0.0;
    }
  }

  LifetimeDistribution out;
  out.systemLifetimes.resize(static_cast<std::size_t>(config_.samples));
  out.units.resize(unitCount);
  for (std::size_t u = 0; u < unitCount; ++u) {
    out.units[u].name = graph_.unit(static_cast<int>(u)).name;
    out.units[u].kind = graph_.unit(static_cast<int>(u)).kind;
  }

  std::vector<Years> lifetimes(unitCount);
  std::vector<bool> diedOfTddb(unitCount);
  for (int s = 0; s < config_.samples; ++s) {
    for (std::size_t u = 0; u < unitCount; ++u) {
      Years best = kUnboundedLifetime;
      bool byTddb = false;
      for (const bool tddb : {false, true}) {
        const double draw = counterUniform(
            config_.seed, static_cast<std::uint64_t>(s),
            static_cast<std::uint64_t>(u), tddb ? 1 : 0);
        const double threshold =
            weibullMeanOneQuantile(draw, config_.weibullShape);
        const Schedule& sched = tddb ? tddbSchedules[u] : emSchedules[u];
        const Years t = sched.crossingTime(threshold, epochLength);
        if (t < best) {
          best = t;
          byTddb = tddb;
        }
      }
      lifetimes[u] = best;
      diedOfTddb[u] = byTddb;
    }
    const Years death = graph_.systemLifetime(lifetimes);
    out.systemLifetimes[static_cast<std::size_t>(s)] = death;
    const int killer = graph_.killerUnit(lifetimes);
    if (killer >= 0) {
      out.units[static_cast<std::size_t>(killer)].kills += 1;
      if (diedOfTddb[static_cast<std::size_t>(killer)])
        out.tddbKills += 1;
      else
        out.emKills += 1;
    }
    if (!std::isinf(death))
      for (std::size_t u = 0; u < unitCount; ++u)
        if (lifetimes[u] <= death) out.units[u].deaths += 1;
  }

  if (telemetry::enabled()) {
    static auto& samples =
        telemetry::Registry::global().counter("hayat_failure_samples_total");
    static auto& emKills =
        telemetry::Registry::global().counter("hayat_failure_em_kills_total");
    static auto& tddbKills = telemetry::Registry::global().counter(
        "hayat_failure_tddb_kills_total");
    samples.add(static_cast<std::uint64_t>(config_.samples));
    emKills.add(static_cast<std::uint64_t>(out.emKills));
    tddbKills.add(static_cast<std::uint64_t>(out.tddbKills));
    for (const UnitFailureStats& unit : out.units) {
      auto& kills = telemetry::Registry::global().counter(
          "hayat_failure_unit_kills_total_" + unit.name);
      kills.add(static_cast<std::uint64_t>(unit.kills));
    }
  }
  return out;
}

Years LifetimeDistribution::percentile(double p) const {
  return hayat::percentile(systemLifetimes, p);
}

double LifetimeDistribution::survivalAt(Years t) const {
  HAYAT_REQUIRE(!systemLifetimes.empty(), "survival of empty distribution");
  std::size_t alive = 0;
  for (const Years life : systemLifetimes)
    if (life > t) ++alive;
  return static_cast<double>(alive) /
         static_cast<double>(systemLifetimes.size());
}

Years LifetimeDistribution::meanLifetime() const {
  HAYAT_REQUIRE(!systemLifetimes.empty(), "mean of empty distribution");
  double sum = 0.0;
  for (const Years life : systemLifetimes) sum += life;
  return sum / static_cast<double>(systemLifetimes.size());
}

void writeDistribution(std::ostream& out, const LifetimeDistribution& d) {
  out << "# hayat-lifetime-distribution v1\n";
  out << "samples," << d.systemLifetimes.size() << "\n";
  for (const double p : {5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0}) {
    out << "p," << static_cast<int>(p) << ",";
    printDouble(out, d.percentile(p));
    out << "\n";
  }
  out << "mean,";
  printDouble(out, d.meanLifetime());
  out << "\n";
  out << "em_kills," << d.emKills << "\n";
  out << "tddb_kills," << d.tddbKills << "\n";
  for (const UnitFailureStats& unit : d.units)
    out << "unit," << unit.name << "," << unit.kills << "," << unit.deaths
        << "\n";
  for (const Years life : d.systemLifetimes) {
    out << "sample,";
    printDouble(out, life);
    out << "\n";
  }
}

}  // namespace hayat
