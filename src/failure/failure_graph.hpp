// Failure-dependency graph: unit deaths propagate to group/system death.
//
// OldSpot-style whole-SoC failure semantics: the chip is a DAG whose
// leaves are physical units (cores, the shared L2, accelerator blocks)
// and whose interior nodes are redundancy groups.  A *serial* group dies
// the moment its weakest member dies (a shared resource everyone needs);
// a *parallel* k-of-n group survives member deaths until fewer than k
// members remain alive (a many-core compute fabric that tolerates dead
// cores).  Groups compose — a group is itself a member of other groups —
// and the designated root node's death time is the system lifetime.
//
// The graph is pure structure: it never samples anything.  Given one
// vector of per-leaf failure times (one Monte Carlo sample from
// monte_carlo.hpp), nodeDeathTime() folds them up the DAG in closed form,
// so the same graph instance serves every sample of every thread without
// mutation — a prerequisite of the byte-identical determinism contract.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "failure/wearout.hpp"

namespace hayat {

/// Physical unit classes a failure graph can carry as leaves.
enum class UnitKind {
  Core,         ///< one compute core (EM via its own duty trajectory)
  SharedCache,  ///< the shared L2 (biased whenever the chip is powered)
  Accelerator,  ///< fixed-function block (future heterogeneous units)
};

/// One leaf unit of the graph.
struct FailureUnit {
  std::string name;
  UnitKind kind = UnitKind::Core;
};

/// The redundancy DAG.  Nodes are added bottom-up (members must already
/// exist), so node ids are topologically ordered by construction.
class FailureGraph {
 public:
  /// Adds a leaf unit; returns its node id.  Leaf ids double as indices
  /// into the per-sample lifetime vectors (unit u is the u-th addUnit).
  int addUnit(std::string name, UnitKind kind);

  /// Adds a group that dies with its first member death.  Members must be
  /// existing node ids.  Returns the group's node id.
  int addSerialGroup(std::string name, std::vector<int> members);

  /// Adds a k-of-n group: alive while at least `required` members are.
  /// required == n degenerates to serial; required == 1 dies last.
  int addParallelGroup(std::string name, std::vector<int> members,
                       int required);

  /// Marks `node` as the system: its death time is the system lifetime.
  void setRoot(int node);

  int unitCount() const { return static_cast<int>(units_.size()); }
  int nodeCount() const { return static_cast<int>(nodes_.size()); }
  const FailureUnit& unit(int unitIndex) const;
  const std::string& nodeName(int node) const;

  /// Death time of `node` given each leaf unit's failure time (indexed
  /// by addUnit order).  kUnboundedLifetime members never die.
  Years nodeDeathTime(int node, const std::vector<Years>& unitLifetimes) const;

  /// Death time of the root.
  Years systemLifetime(const std::vector<Years>& unitLifetimes) const;

  /// The leaf whose death coincides with system death — the unit that
  /// "took the system down" in this sample (lowest index on ties).
  /// Returns -1 when the system never dies.
  int killerUnit(const std::vector<Years>& unitLifetimes) const;

 private:
  enum class NodeType { Leaf, Serial, Parallel };
  struct Node {
    NodeType type = NodeType::Leaf;
    std::string name;
    int unitIndex = -1;        ///< leaves: index into units_
    std::vector<int> members;  ///< groups: member node ids
    int required = 0;          ///< parallel: minimum alive members
  };

  int addNode(Node node);
  void requireMembers(const std::vector<int>& members) const;

  std::vector<FailureUnit> units_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Topology knobs of the default SoC graph.
struct SocFailureTopology {
  int coreCount = 0;
  /// The compute fabric survives while at least ceil(fraction * cores)
  /// cores are alive (k-of-n redundancy over the core array).
  double minAliveCoreFraction = 0.5;
  /// Fixed-function accelerator blocks; they join the system serial
  /// group (a dead accelerator removes a capability the SoC contract
  /// promises, so it counts as system death).
  int acceleratorCount = 0;
};

/// Builds the default whole-SoC graph: unit ids are cores 0..n-1, then
/// the shared L2, then any accelerators; the root is the serial
/// composition of the k-of-n core fabric, the L2, and the accelerators.
FailureGraph buildSocFailureGraph(const SocFailureTopology& topology);

}  // namespace hayat
