// Seeded Monte Carlo over unit lifetimes: distributions, not point MTTF.
//
// The lifetime simulator observes each unit's (temperature, stress)
// trajectory; the wearout models (wearout.hpp) turn a trajectory into
// per-epoch Miner damage rates; this driver samples the *scatter* around
// those means.  Each sample draws one mean-one Weibull damage threshold
// per (unit, mechanism) — aging/mttf.hpp's weibullMeanOneQuantile — and
// the unit fails when its accumulated damage crosses the threshold; the
// failure graph folds unit deaths into one system lifetime per sample.
//
// Determinism contract (pinned by tests/test_failure.cpp)
// ------------------------------------------------------
// Sampling is *counter-based*: the u01 behind sample s, unit u,
// mechanism m is the pure function counterUniform(seed, s, u, m) — no
// shared sequential generator, no draw-order dependence.  Any execution
// order (1 thread, 8 threads, proc:N worker processes) computes the
// same bytes, which is what lets `hayat mttf --distribution` promise
// byte-identical exports across --workers backends.  The per-task seed
// derives from the spec's baseSeed via SeedStream::Failure, so disjoint
// (chip, repetition) tasks draw decorrelated streams.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "failure/failure_graph.hpp"
#include "failure/wearout.hpp"

namespace hayat {

/// Pure counter-based u64: one splitmix64 chain over (seed, a, b, c).
std::uint64_t counterU64(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c);

/// Pure counter-based uniform in [0, 1): the 53-bit mantissa of
/// counterU64.  Identical on every platform and execution order.
double counterUniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c);

/// Monte Carlo knobs.  Part of the ExperimentSpec signature (samples > 0
/// switches a run into distribution mode, so the spec hash — and hence
/// the result-cache key — distinguishes distribution runs from
/// point-MTTF runs).
struct FailureConfig {
  /// Lifetime samples per run; 0 keeps the run in point-MTTF mode (no
  /// Monte Carlo, no distribution in the result).
  int samples = 0;
  /// Weibull shape of the per-unit lifetime scatter (~2: wear-out with
  /// moderate spread; larger = tighter around the mean).
  double weibullShape = 2.0;
  /// k-of-n redundancy of the core fabric (buildSocFailureGraph).
  double minAliveCoreFraction = 0.5;
  EmConfig em;
  TddbConfig tddb;
  /// Per-task stream seed.  Like the lifetime seeds this is an *output*
  /// of engine task expansion (SeedStream::Failure), never hashed.
  std::uint64_t seed = 0;
};

/// One unit's observed operating history, one entry per aging epoch.
struct UnitTrajectory {
  std::vector<Kelvin> temperature;  ///< time-average T per epoch [K]
  std::vector<double> stress;       ///< duty / current factor per epoch
};

/// Per-unit failure accounting over all samples.
struct UnitFailureStats {
  std::string name;
  UnitKind kind = UnitKind::Core;
  long kills = 0;   ///< samples where this unit's death WAS system death
  long deaths = 0;  ///< samples where it died at or before system death
};

/// The sampled system-lifetime distribution.
struct LifetimeDistribution {
  /// System lifetime per sample, in sample (counter) order — the
  /// canonical bytes the determinism contract is stated over.
  std::vector<Years> systemLifetimes;
  std::vector<UnitFailureStats> units;
  long emKills = 0;    ///< samples whose killer died of electromigration
  long tddbKills = 0;  ///< samples whose killer died of TDDB

  /// Linear-interpolated percentile of the sampled lifetimes, p in
  /// [0, 100].
  Years percentile(double p) const;

  /// Fraction of samples still alive at year t (survival function).
  double survivalAt(Years t) const;

  /// Mean sampled lifetime (infinite if any sample never fails).
  Years meanLifetime() const;
};

/// The sampling driver.  Stateless after construction; run() is const
/// and pure, so one instance may serve concurrent callers.
class FailureMonteCarlo {
 public:
  FailureMonteCarlo(FailureConfig config, FailureGraph graph);

  /// Samples the distribution from one trajectory per graph unit (same
  /// order as addUnit; all trajectories must have equal epoch counts).
  LifetimeDistribution run(const std::vector<UnitTrajectory>& units,
                           Years epochLength) const;

  /// One (sample, unit, mechanism) failure time — the pure function the
  /// whole distribution is assembled from, exposed for the test
  /// harness's stream-reuse (Kolmogorov–Smirnov) checks.
  Years sampleMechanismLifetime(const UnitTrajectory& unit, Years epochLength,
                                int sample, int unitIndex,
                                bool tddb) const;

  const FailureConfig& config() const { return config_; }
  const FailureGraph& graph() const { return graph_; }

 private:
  FailureConfig config_;
  FailureGraph graph_;
  EmModel em_;
  TddbModel tddb_;
};

/// Canonical text export of a distribution (versioned, %.17g doubles) —
/// what `hayat mttf --distribution --export` writes and what the
/// determinism tests diff byte-for-byte across worker topologies.
void writeDistribution(std::ostream& out, const LifetimeDistribution& d);

}  // namespace hayat
