#include "failure/failure_graph.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hayat {

int FailureGraph::addNode(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void FailureGraph::requireMembers(const std::vector<int>& members) const {
  HAYAT_REQUIRE(!members.empty(), "failure group needs at least one member");
  for (const int m : members)
    HAYAT_REQUIRE(m >= 0 && m < nodeCount(),
                  "failure group references an unknown node");
}

int FailureGraph::addUnit(std::string name, UnitKind kind) {
  Node node;
  node.type = NodeType::Leaf;
  node.name = name;
  node.unitIndex = static_cast<int>(units_.size());
  units_.push_back(FailureUnit{std::move(name), kind});
  return addNode(std::move(node));
}

int FailureGraph::addSerialGroup(std::string name, std::vector<int> members) {
  requireMembers(members);
  Node node;
  node.type = NodeType::Serial;
  node.name = std::move(name);
  node.members = std::move(members);
  return addNode(std::move(node));
}

int FailureGraph::addParallelGroup(std::string name, std::vector<int> members,
                                   int required) {
  requireMembers(members);
  HAYAT_REQUIRE(required >= 1 &&
                    required <= static_cast<int>(members.size()),
                "k-of-n group needs 1 <= k <= n");
  Node node;
  node.type = NodeType::Parallel;
  node.name = std::move(name);
  node.members = std::move(members);
  node.required = required;
  return addNode(std::move(node));
}

void FailureGraph::setRoot(int node) {
  HAYAT_REQUIRE(node >= 0 && node < nodeCount(), "unknown root node");
  root_ = node;
}

const FailureUnit& FailureGraph::unit(int unitIndex) const {
  HAYAT_REQUIRE(unitIndex >= 0 && unitIndex < unitCount(),
                "unknown failure unit");
  return units_[static_cast<std::size_t>(unitIndex)];
}

const std::string& FailureGraph::nodeName(int node) const {
  HAYAT_REQUIRE(node >= 0 && node < nodeCount(), "unknown failure node");
  return nodes_[static_cast<std::size_t>(node)].name;
}

Years FailureGraph::nodeDeathTime(
    int node, const std::vector<Years>& unitLifetimes) const {
  HAYAT_REQUIRE(node >= 0 && node < nodeCount(), "unknown failure node");
  HAYAT_REQUIRE(static_cast<int>(unitLifetimes.size()) == unitCount(),
                "lifetime vector does not match the graph's unit count");
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  switch (n.type) {
    case NodeType::Leaf:
      return unitLifetimes[static_cast<std::size_t>(n.unitIndex)];
    case NodeType::Serial: {
      Years death = kUnboundedLifetime;
      for (const int m : n.members)
        death = std::min(death, nodeDeathTime(m, unitLifetimes));
      return death;
    }
    case NodeType::Parallel: {
      // The group dies the instant the alive count drops below
      // `required`: the (n - required + 1)-th member death.
      std::vector<Years> deaths;
      deaths.reserve(n.members.size());
      for (const int m : n.members)
        deaths.push_back(nodeDeathTime(m, unitLifetimes));
      const auto nth =
          deaths.begin() + (static_cast<long>(deaths.size()) - n.required);
      std::nth_element(deaths.begin(), nth, deaths.end());
      return *nth;
    }
  }
  return kUnboundedLifetime;  // unreachable
}

Years FailureGraph::systemLifetime(
    const std::vector<Years>& unitLifetimes) const {
  HAYAT_REQUIRE(root_ >= 0, "failure graph has no root");
  return nodeDeathTime(root_, unitLifetimes);
}

int FailureGraph::killerUnit(const std::vector<Years>& unitLifetimes) const {
  const Years death = systemLifetime(unitLifetimes);
  if (std::isinf(death)) return -1;
  for (int u = 0; u < unitCount(); ++u)
    if (unitLifetimes[static_cast<std::size_t>(u)] == death) return u;
  return -1;  // unreachable for graphs whose root covers every leaf
}

FailureGraph buildSocFailureGraph(const SocFailureTopology& topology) {
  HAYAT_REQUIRE(topology.coreCount >= 1, "SoC graph needs at least one core");
  HAYAT_REQUIRE(topology.minAliveCoreFraction > 0.0 &&
                    topology.minAliveCoreFraction <= 1.0,
                "minAliveCoreFraction must be in (0, 1]");
  HAYAT_REQUIRE(topology.acceleratorCount >= 0,
                "negative accelerator count");

  FailureGraph graph;
  std::vector<int> cores;
  cores.reserve(static_cast<std::size_t>(topology.coreCount));
  for (int c = 0; c < topology.coreCount; ++c)
    cores.push_back(
        graph.addUnit("core" + std::to_string(c), UnitKind::Core));
  const int l2 = graph.addUnit("l2", UnitKind::SharedCache);

  const int required = std::max(
      1, static_cast<int>(std::ceil(topology.minAliveCoreFraction *
                                    topology.coreCount - 1e-9)));
  const int fabric = graph.addParallelGroup("cores", cores, required);

  std::vector<int> system = {fabric, l2};
  for (int a = 0; a < topology.acceleratorCount; ++a)
    system.push_back(graph.addUnit("accel" + std::to_string(a),
                                   UnitKind::Accelerator));
  graph.setRoot(graph.addSerialGroup("system", std::move(system)));
  return graph;
}

}  // namespace hayat
