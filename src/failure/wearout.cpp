#include "failure/wearout.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hayat {

namespace {
constexpr double kBoltzmannEv = 8.617333262e-5;  // [eV/K]

double arrhenius(double activationEnergyEv, Kelvin temperature,
                 Kelvin referenceTemperature) {
  return std::exp(activationEnergyEv / kBoltzmannEv *
                  (1.0 / temperature - 1.0 / referenceTemperature));
}
}  // namespace

EmModel::EmModel(EmConfig config) : config_(config) {
  HAYAT_REQUIRE(config.activationEnergyEv > 0.0,
                "EM activation energy must be positive");
  HAYAT_REQUIRE(config.currentExponent > 0.0,
                "EM current exponent must be positive");
  HAYAT_REQUIRE(config.referenceMttfYears > 0.0,
                "EM reference MTTF must be positive");
  HAYAT_REQUIRE(config.referenceTemperature > 0.0,
                "EM reference temperature must be positive kelvin");
  HAYAT_REQUIRE(config.referenceCurrentFactor > 0.0,
                "EM reference current factor must be positive");
}

Years EmModel::mttf(Kelvin temperature, double currentFactor) const {
  HAYAT_REQUIRE(temperature > 0.0, "temperature must be positive kelvin");
  HAYAT_REQUIRE(currentFactor >= 0.0, "negative current-density factor");
  if (currentFactor <= 0.0) return kUnboundedLifetime;
  return config_.referenceMttfYears *
         std::pow(currentFactor / config_.referenceCurrentFactor,
                  -config_.currentExponent) *
         arrhenius(config_.activationEnergyEv, temperature,
                   config_.referenceTemperature);
}

double EmModel::damageRate(Kelvin temperature, double currentFactor) const {
  const Years t = mttf(temperature, currentFactor);
  return std::isinf(t) ? 0.0 : 1.0 / t;
}

TddbModel::TddbModel(TddbConfig config) : config_(config) {
  HAYAT_REQUIRE(config.activationEnergyEv > 0.0,
                "TDDB activation energy must be positive");
  HAYAT_REQUIRE(config.voltageExponent > 0.0,
                "TDDB voltage exponent must be positive");
  HAYAT_REQUIRE(config.vdd > 0.0 && config.referenceVdd > 0.0,
                "TDDB voltages must be positive");
  HAYAT_REQUIRE(config.referenceMttfYears > 0.0,
                "TDDB reference MTTF must be positive");
  HAYAT_REQUIRE(config.referenceTemperature > 0.0,
                "TDDB reference temperature must be positive kelvin");
}

Years TddbModel::mttf(Kelvin temperature, double biasDuty) const {
  HAYAT_REQUIRE(temperature > 0.0, "temperature must be positive kelvin");
  HAYAT_REQUIRE(biasDuty >= 0.0 && biasDuty <= 1.0,
                "bias duty must be in [0, 1]");
  if (biasDuty <= 0.0) return kUnboundedLifetime;
  return config_.referenceMttfYears *
         std::pow(config_.vdd / config_.referenceVdd,
                  -config_.voltageExponent) *
         arrhenius(config_.activationEnergyEv, temperature,
                   config_.referenceTemperature) /
         biasDuty;
}

double TddbModel::damageRate(Kelvin temperature, double biasDuty) const {
  const Years t = mttf(temperature, biasDuty);
  return std::isinf(t) ? 0.0 : 1.0 / t;
}

}  // namespace hayat
